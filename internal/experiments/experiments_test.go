package experiments

import (
	"strings"
	"testing"

	"pipetune/internal/dataset"
	"pipetune/internal/perf"
	"pipetune/internal/sched"
	"pipetune/internal/workload"
)

// The experiment tests assert the *shapes* the paper reports (who wins, in
// which direction) on the scaled-down quick configuration.

// testCfg honours -short: the corpus, epoch budget and trace length shrink
// further so `go test -short ./...` finishes in a few seconds while the
// full run keeps the quick configuration for CI. The asserted shapes derive
// from simulated durations (Table 3 full sizes), so they survive the
// smaller corpus.
func testCfg() Config {
	cfg := quickConfig()
	if testing.Short() {
		cfg.Data = dataset.Config{TrainSize: 64, TestSize: 32}
		cfg.Epochs = 3
		cfg.MultiTenantJobs = 4
	}
	return cfg
}

func TestFigure1Shapes(t *testing.T) {
	res, err := Figure1(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 18 { // 3 instances x 6 parameter counts
		t.Fatalf("figure 1 has %d rows, want 18", len(res.Rows))
	}
	// Exponential growth: each added parameter triples time and cost.
	byInstance := map[string][]Figure1Row{}
	for _, row := range res.Rows {
		byInstance[row.Instance.String()] = append(byInstance[row.Instance.String()], row)
	}
	for inst, rows := range byInstance {
		for i := 1; i < len(rows); i++ {
			ratio := rows[i].TuningHours / rows[i-1].TuningHours
			if ratio < 2.9 || ratio > 3.1 {
				t.Fatalf("%s: hours ratio %v at k=%d, want ~3", inst, ratio, rows[i].NumParams)
			}
			if rows[i].CostUSD <= rows[i-1].CostUSD {
				t.Fatalf("%s: cost not growing", inst)
			}
		}
	}
	if res.Table().Render() == "" {
		t.Fatal("empty render")
	}
}

func TestFigure2RepetitiveEpochs(t *testing.T) {
	res, err := Figure2(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Events) != perf.NumEvents || len(res.Cells) != perf.NumEvents {
		t.Fatalf("figure 2 has %d events", len(res.Events))
	}
	if len(res.Phases) != 6 {
		t.Fatalf("figure 2 has %d phases, want init + 5 epochs", len(res.Phases))
	}
	// Figure 2's key observation: events repeat across epochs.
	if cv := res.EpochStability(); cv > 0.10 {
		t.Fatalf("epoch-to-epoch variation %.3f too high for 'repetitive behaviour'", cv)
	}
	// Init column must differ from the training epochs.
	different := 0
	for _, row := range res.Cells {
		if row[0] < row[1]*0.8 || row[0] > row[1]*1.2 {
			different++
		}
	}
	if different < perf.NumEvents/4 {
		t.Fatalf("only %d events distinguish init from training", different)
	}
}

func TestFigure3aShapes(t *testing.T) {
	res, err := Figure3a(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("figure 3a has %d rows", len(res.Rows))
	}
	prevDur := 0.0
	for _, row := range res.Rows {
		// Larger batches: worse accuracy, shorter runtime, less energy.
		if row.AccuracyPct > 1 {
			t.Fatalf("batch %d accuracy diff %+.1f%% should not be positive", row.BatchSize, row.AccuracyPct)
		}
		if row.DurationPct >= 0 {
			t.Fatalf("batch %d duration diff %+.1f%% should be negative", row.BatchSize, row.DurationPct)
		}
		if row.EnergyPct >= 0 {
			t.Fatalf("batch %d energy diff %+.1f%% should be negative", row.BatchSize, row.EnergyPct)
		}
		if row.DurationPct >= prevDur && prevDur != 0 {
			t.Fatalf("duration diffs not monotone: %v then %v", prevDur, row.DurationPct)
		}
		prevDur = row.DurationPct
	}
	// The largest batch loses the most accuracy.
	if res.Rows[2].AccuracyPct > res.Rows[0].AccuracyPct {
		t.Fatalf("batch 1024 accuracy loss (%v) smaller than batch 64 (%v)",
			res.Rows[2].AccuracyPct, res.Rows[0].AccuracyPct)
	}
}

func TestFigure3bcShapes(t *testing.T) {
	res, err := Figure3bc(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 9 {
		t.Fatalf("figure 3b/c has %d rows, want 9", len(res.Rows))
	}
	// Paper's envelope: batch 64 slows down at 8 cores, batch 1024 speeds
	// up, and energy follows runtime.
	small, err := res.Row(64, 8)
	if err != nil {
		t.Fatal(err)
	}
	if small.DurationPct <= 0 {
		t.Fatalf("batch 64 at 8 cores should slow down, got %+.1f%%", small.DurationPct)
	}
	large, err := res.Row(1024, 8)
	if err != nil {
		t.Fatal(err)
	}
	if large.DurationPct >= 0 {
		t.Fatalf("batch 1024 at 8 cores should speed up, got %+.1f%%", large.DurationPct)
	}
	if large.EnergyPct >= 0 {
		t.Fatalf("batch 1024 at 8 cores should save energy, got %+.1f%%", large.EnergyPct)
	}
	// Scaling ratio ordered by batch size at every core count.
	for _, cores := range []int{2, 4, 8} {
		r64, _ := res.Row(64, cores)
		r1024, _ := res.Row(1024, cores)
		if r1024.DurationPct >= r64.DurationPct {
			t.Fatalf("at %d cores batch 1024 (%v%%) should scale better than batch 64 (%v%%)",
				cores, r1024.DurationPct, r64.DurationPct)
		}
	}
}

func TestFigure5Grid(t *testing.T) {
	res, err := Figure5(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 12 { // 4 core levels x 3 job counts
		t.Fatalf("figure 5 has %d rows, want 12", len(res.Rows))
	}
	// The paper's observation: only a few system configurations yield
	// runtime improvements; heavy contention must hurt.
	worst := 0.0
	for _, row := range res.Rows {
		if row.Jobs == 4 && row.Cores == 1 {
			worst = row.RuntimeImpPct
		}
	}
	if worst >= 0 {
		t.Fatalf("1 core / 4 jobs should degrade runtime, got %+.1f%%", worst)
	}
	positives := 0
	for _, row := range res.Rows {
		if row.RuntimeImpPct > 0 {
			positives++
		}
	}
	if positives > len(res.Rows)/2 {
		t.Fatalf("%d/12 configurations improved runtime; paper says only a few", positives)
	}
}

func TestTable2Shapes(t *testing.T) {
	res, err := Table2(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("table 2 has %d rows", len(res.Rows))
	}
	arb, _ := res.Row("Arbitrary")
	v1, _ := res.Row("Tune V1")
	v2, _ := res.Row("Tune V2")
	pt, _ := res.Row("PipeTune")

	// Tuning beats arbitrary configuration on accuracy.
	if v1.AccuracyPct <= arb.AccuracyPct {
		t.Fatalf("V1 accuracy %.2f not above arbitrary %.2f", v1.AccuracyPct, arb.AccuracyPct)
	}
	// PipeTune: accuracy on par with V1 (and >= V2), lowest tuning time.
	if pt.AccuracyPct < v1.AccuracyPct-3 {
		t.Fatalf("PipeTune accuracy %.2f well below V1 %.2f", pt.AccuracyPct, v1.AccuracyPct)
	}
	if pt.TuningSecs >= v1.TuningSecs {
		t.Fatalf("PipeTune tuning %.0f s not below V1 %.0f s", pt.TuningSecs, v1.TuningSecs)
	}
	if pt.TuningSecs >= v2.TuningSecs {
		t.Fatalf("PipeTune tuning %.0f s not below V2 %.0f s", pt.TuningSecs, v2.TuningSecs)
	}
	// V2 pays for the larger search space.
	if v2.TuningSecs <= v1.TuningSecs {
		t.Fatalf("V2 tuning %.0f s not above V1 %.0f s", v2.TuningSecs, v1.TuningSecs)
	}
	// PipeTune's selected model trains no slower than V1's.
	if pt.TrainingSecs > v1.TrainingSecs {
		t.Fatalf("PipeTune training %.0f s above V1 %.0f s", pt.TrainingSecs, v1.TrainingSecs)
	}
}

func TestFigure8FamiliesSeparate(t *testing.T) {
	res, err := Figure8(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("figure 8 has %d rows", len(res.Rows))
	}
	get := func(m workload.Model, ds workload.Dataset) Figure8Row {
		row, err := res.Row(workload.Workload{Model: m, Dataset: ds})
		if err != nil {
			t.Fatal(err)
		}
		return row
	}
	lenetM := get(workload.LeNet5, workload.MNIST)
	lenetF := get(workload.LeNet5, workload.FashionMNIST)
	cnn := get(workload.CNN, workload.News20)
	lstm := get(workload.LSTM, workload.News20)

	// Type-I workloads share a cluster; Type-II share the other.
	if lenetM.MajorityCluster != lenetF.MajorityCluster {
		t.Fatalf("LeNet workloads split across clusters: %d vs %d",
			lenetM.MajorityCluster, lenetF.MajorityCluster)
	}
	if cnn.MajorityCluster != lstm.MajorityCluster {
		t.Fatalf("News20 workloads split across clusters: %d vs %d",
			cnn.MajorityCluster, lstm.MajorityCluster)
	}
	if lenetM.MajorityCluster == cnn.MajorityCluster {
		t.Fatal("Type-I and Type-II workloads collapsed into one cluster")
	}
	// Majorities should be strong, not 51/49.
	for _, row := range res.Rows {
		major, minor := row.Cluster1, row.Cluster2
		if minor > major {
			major, minor = minor, major
		}
		if float64(major)/float64(major+minor) < 0.8 {
			t.Fatalf("%s cluster majority too weak: %d vs %d", row.Workload.Name(), major, minor)
		}
	}
}

func TestFigures9And10Convergence(t *testing.T) {
	res, err := Figure9and10(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	v1, err := res.Curve("Tune V1")
	if err != nil {
		t.Fatal(err)
	}
	v2, err := res.Curve("Tune V2")
	if err != nil {
		t.Fatal(err)
	}
	pt, err := res.Curve("PipeTune")
	if err != nil {
		t.Fatal(err)
	}
	// Figure 9: PipeTune reaches a common accuracy level first.
	target := 0.9 * minF(v1.BestAccuracy, v2.BestAccuracy, pt.BestAccuracy)
	tPT, tV1, tV2 := pt.TimeToAccuracy(target), v1.TimeToAccuracy(target), v2.TimeToAccuracy(target)
	if !(tPT <= tV1 && tPT <= tV2) {
		t.Fatalf("PipeTune (%.0f s) not fastest to %.2f accuracy (V1 %.0f, V2 %.0f)", tPT, target, tV1, tV2)
	}
	// Figure 10: PipeTune's trials are the shortest on average.
	if pt.MeanTrialDuration() >= v1.MeanTrialDuration() {
		t.Fatalf("PipeTune mean trial %.0f s not below V1 %.0f s",
			pt.MeanTrialDuration(), v1.MeanTrialDuration())
	}
	// PipeTune finishes tuning before V1 and V2.
	if pt.TuningTime >= v1.TuningTime || pt.TuningTime >= v2.TuningTime {
		t.Fatalf("PipeTune tuning %.0f s not below V1 %.0f / V2 %.0f",
			pt.TuningTime, v1.TuningTime, v2.TuningTime)
	}
}

func minF(vals ...float64) float64 {
	m := vals[0]
	for _, v := range vals[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

func TestFigure11Shapes(t *testing.T) {
	res, err := Figure11(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	workloads := workload.OfType(workload.TypeI, workload.TypeII)
	if len(res.Rows) != len(workloads)*3 {
		t.Fatalf("figure 11 has %d rows, want %d", len(res.Rows), len(workloads)*3)
	}
	for _, w := range workloads {
		v1, err := res.Row(w, SystemV1)
		if err != nil {
			t.Fatal(err)
		}
		pt, err := res.Row(w, SystemPipeTune)
		if err != nil {
			t.Fatal(err)
		}
		// Headline: PipeTune reduces tuning time without hurting accuracy.
		if pt.TuningSecs >= v1.TuningSecs {
			t.Fatalf("%s: PipeTune tuning %.0f s not below V1 %.0f s", w.Name(), pt.TuningSecs, v1.TuningSecs)
		}
		if pt.AccuracyPct < v1.AccuracyPct-3 {
			t.Fatalf("%s: PipeTune accuracy %.2f well below V1 %.2f", w.Name(), pt.AccuracyPct, v1.AccuracyPct)
		}
		if pt.TuningKJ >= v1.TuningKJ {
			t.Fatalf("%s: PipeTune energy %.1f kJ not below V1 %.1f kJ", w.Name(), pt.TuningKJ, v1.TuningKJ)
		}
	}
}

func TestFigure12Shapes(t *testing.T) {
	res, err := Figure12(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	workloads := workload.OfType(workload.TypeIII)
	if len(res.Rows) != len(workloads)*3 {
		t.Fatalf("figure 12 has %d rows, want %d", len(res.Rows), len(workloads)*3)
	}
	// Short-epoch workloads: PipeTune must still reduce tuning time on
	// aggregate (per-workload slack is allowed; §7.3 calls this the more
	// challenging setup).
	var v1Total, ptTotal float64
	for _, w := range workloads {
		v1, err := res.Row(w, SystemV1)
		if err != nil {
			t.Fatal(err)
		}
		pt, err := res.Row(w, SystemPipeTune)
		if err != nil {
			t.Fatal(err)
		}
		v1Total += v1.TuningSecs
		ptTotal += pt.TuningSecs
		if pt.AccuracyPct < v1.AccuracyPct-5 {
			t.Fatalf("%s: PipeTune accuracy %.2f well below V1 %.2f", w.Name(), pt.AccuracyPct, v1.AccuracyPct)
		}
	}
	if ptTotal >= v1Total {
		t.Fatalf("PipeTune Type-III tuning %.0f s not below V1 %.0f s", ptTotal, v1Total)
	}
}

func TestFigure13ResponseTimes(t *testing.T) {
	res, err := Figure13(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	ptAll, err := res.Row("all", SystemPipeTune)
	if err != nil {
		t.Fatal(err)
	}
	v1All, err := res.Row("all", SystemV1)
	if err != nil {
		t.Fatal(err)
	}
	v2All, err := res.Row("all", SystemV2)
	if err != nil {
		t.Fatal(err)
	}
	if ptAll.MeanResponse >= v1All.MeanResponse {
		t.Fatalf("PipeTune response %.0f s not below V1 %.0f s", ptAll.MeanResponse, v1All.MeanResponse)
	}
	if ptAll.MeanResponse >= v2All.MeanResponse {
		t.Fatalf("PipeTune response %.0f s not below V2 %.0f s", ptAll.MeanResponse, v2All.MeanResponse)
	}
	// Per-type rows exist.
	if _, err := res.Row("Type-I", SystemPipeTune); err != nil {
		t.Fatal(err)
	}
	if _, err := res.Row("Type-II", SystemPipeTune); err != nil {
		t.Fatal(err)
	}
}

func TestFigure14ResponseTimes(t *testing.T) {
	res, err := Figure14(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	ptAll, err := res.Row("all", SystemPipeTune)
	if err != nil {
		t.Fatal(err)
	}
	v1All, err := res.Row("all", SystemV1)
	if err != nil {
		t.Fatal(err)
	}
	if ptAll.MeanResponse >= v1All.MeanResponse {
		t.Fatalf("PipeTune response %.0f s not below V1 %.0f s", ptAll.MeanResponse, v1All.MeanResponse)
	}
}

func TestAblationGroundTruth(t *testing.T) {
	res, err := AblationNoGroundTruth(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	warm, cold := res.Rows[0], res.Rows[1]
	if warm.MeanTuningS >= cold.MeanTuningS {
		t.Fatalf("warm ground truth (%.0f s) not faster than probing-only (%.0f s)",
			warm.MeanTuningS, cold.MeanTuningS)
	}
	if warm.HitRate <= 0 {
		t.Fatal("warm variant never hit")
	}
	if cold.HitRate != 0 {
		t.Fatalf("disabled ground truth hit rate %v, want 0", cold.HitRate)
	}
}

func TestAblationSearchers(t *testing.T) {
	res, err := AblationSearchers(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("searcher ablation has %d rows", len(res.Rows))
	}
	for _, row := range res.Rows {
		// LeNet/MNIST has 10 classes: anything above ~1.2x chance shows
		// the searcher genuinely evaluated trained models.
		if row.Trials == 0 || row.BestAccuracy <= 0.12 || row.TuningSecs <= 0 {
			t.Fatalf("searcher %s degenerate: %+v", row.Searcher, row)
		}
	}
}

func TestAblationThreshold(t *testing.T) {
	res, err := AblationThreshold(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("threshold ablation has %d rows", len(res.Rows))
	}
	// A strict threshold must hit no more often than a loose one.
	strict, loose := res.Rows[0], res.Rows[len(res.Rows)-1]
	if strict.HitRate > loose.HitRate {
		t.Fatalf("strict threshold hit rate %v above loose %v", strict.HitRate, loose.HitRate)
	}
}

func TestAblationProbeBudget(t *testing.T) {
	res, err := AblationProbeBudget(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("probe ablation has %d rows", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.TuningSecs <= 0 {
			t.Fatalf("budget %d degenerate: %+v", row.MaxProbeEpochs, row)
		}
	}
}

func TestTablesRender(t *testing.T) {
	cfg := testCfg()
	f1Res, err := Figure1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := f1Res.Table().Render()
	if !strings.Contains(out, "m4.4xlarge") {
		t.Fatalf("figure 1 render missing instance name:\n%s", out)
	}
	f3, err := Figure3bc(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f3.Table().Render(), "cores") {
		t.Fatal("figure 3bc render missing header")
	}
}

// TestFairShareThroughput is the dispatcher's acceptance experiment: on a
// deterministic saturated two-tenant trace, deficit round robin gives the
// weight-2 tenant ~2x the weight-1 tenant's completed-job throughput at
// the horizon, while FIFO splits the same trace 1:1.
func TestFairShareThroughput(t *testing.T) {
	res, err := FairShare(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("fair share has %d rows, want 4", len(res.Rows))
	}
	gold, err := res.Row("fair", "gold")
	if err != nil {
		t.Fatal(err)
	}
	free, err := res.Row("fair", "free")
	if err != nil {
		t.Fatal(err)
	}
	if gold.Completed+free.Completed != res.Horizon {
		t.Fatalf("horizon accounting broken: %d + %d != %d", gold.Completed, free.Completed, res.Horizon)
	}
	ratio := float64(gold.Completed) / float64(free.Completed)
	if ratio < 1.8 || ratio > 2.2 {
		t.Fatalf("fair policy throughput ratio %.2f (gold %d, free %d), want ~2.0",
			ratio, gold.Completed, free.Completed)
	}
	// (Mean waits are over horizon-completed jobs only, so the slower
	// tenant's figure is survivor-biased low; assert sanity, not order.)
	if gold.MeanWait < 0 || free.MeanWait < 0 {
		t.Errorf("negative mean waits: gold %.1f free %.1f", gold.MeanWait, free.MeanWait)
	}

	// FIFO on the identical trace ignores weights: a 1:1 split.
	fifoGold, err := res.Row("fifo", "gold")
	if err != nil {
		t.Fatal(err)
	}
	fifoFree, err := res.Row("fifo", "free")
	if err != nil {
		t.Fatal(err)
	}
	fifoRatio := float64(fifoGold.Completed) / float64(fifoFree.Completed)
	if fifoRatio < 0.9 || fifoRatio > 1.1 {
		t.Fatalf("fifo throughput ratio %.2f (gold %d, free %d), want ~1.0",
			fifoRatio, fifoGold.Completed, fifoFree.Completed)
	}
	if res.Table().Render() == "" {
		t.Fatal("empty render")
	}

	// Determinism: an identical run reproduces every row exactly.
	again, err := FairShare(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Rows {
		if res.Rows[i] != again.Rows[i] {
			t.Fatalf("fair share not deterministic: row %d %+v vs %+v", i, res.Rows[i], again.Rows[i])
		}
	}
}

func TestSchedulingPoliciesContention(t *testing.T) {
	res, err := SchedulingPolicies(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("policy comparison has %d rows, want 3", len(res.Rows))
	}
	fifo, err := res.Row(sched.NameFIFO)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row.MeanResponse <= 0 || row.Makespan <= 0 {
			t.Fatalf("policy %s degenerate: %+v", row.Policy, row)
		}
	}
	// EASY backfill only guarantees the queue head is never delayed;
	// deeper queue positions can shift, so mean response is not bounded by
	// FIFO's in general. On this fixed, deterministic trace it must not
	// materially degrade it (empirical regression bound, not a theorem).
	backfill, err := res.Row(sched.NameBackfill)
	if err != nil {
		t.Fatal(err)
	}
	if backfill.MeanResponse > fifo.MeanResponse*1.05 {
		t.Fatalf("backfill mean response %.1f well above FIFO %.1f",
			backfill.MeanResponse, fifo.MeanResponse)
	}
	if res.Table().Render() == "" {
		t.Fatal("empty render")
	}
}
