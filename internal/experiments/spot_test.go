package experiments

import "testing"

// TestSpotSavings is the heterogeneous cluster plane's acceptance
// experiment: a half-spot EC2 fleet with checkpointed recovery must beat
// the all-on-demand fleet on total dollars while staying within a bounded
// tuning-time inflation — and the revocations must be real (the spot run
// survives interruptions, it doesn't dodge them).
func TestSpotSavings(t *testing.T) {
	res, err := SpotSavings(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("want 2 rows, got %d", len(res.Rows))
	}
	od, spot := res.Rows[0], res.Rows[1]
	if od.SpotNodes != 0 || od.Revocations != 0 {
		t.Fatalf("on-demand fleet saw spot activity: %+v", od)
	}
	if spot.SpotNodes == 0 || spot.OnDemandNodes == 0 {
		t.Fatalf("spot fleet not mixed: %+v", spot)
	}
	if spot.Revocations == 0 {
		t.Fatal("spot run saw no revocations; the comparison demonstrates nothing")
	}
	if spot.SalvagedEpochs == 0 {
		t.Fatal("revoked trials salvaged no epochs despite the trial cache")
	}
	if spot.CostUSD >= od.CostUSD {
		t.Fatalf("spot fleet not cheaper: %.2f$ vs %.2f$ on-demand", spot.CostUSD, od.CostUSD)
	}
	if res.TimeInflation > 1.25 {
		t.Fatalf("tuning time inflated %.2fx (> 1.25x bound)", res.TimeInflation)
	}
	if spot.BestAccuracy != od.BestAccuracy {
		t.Fatalf("fleets disagree on best accuracy: %v vs %v", spot.BestAccuracy, od.BestAccuracy)
	}
	// Reproducibility: the whole comparison is a deterministic function of
	// the config.
	again, err := SpotSavings(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Rows {
		if again.Rows[i] != res.Rows[i] {
			t.Fatalf("row %d not reproducible: %+v vs %+v", i, again.Rows[i], res.Rows[i])
		}
	}
}
