package experiments

import "testing"

// TestScaleOutLinearThroughput pins the acceptance claim: N workers
// drain the footprinted trial backlog ~N× faster, exactly, because the
// trace is a deterministic schedule.
func TestScaleOutLinearThroughput(t *testing.T) {
	res, err := ScaleOut(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	one, err := res.Row(1)
	if err != nil {
		t.Fatal(err)
	}
	if one.Speedup != 1 || one.Efficiency != 1 {
		t.Fatalf("1-worker baseline speedup %v efficiency %v, want 1", one.Speedup, one.Efficiency)
	}
	for _, workers := range []int{2, 4, 8} {
		row, err := res.Row(workers)
		if err != nil {
			t.Fatal(err)
		}
		// The backlog divides evenly into waves, so the speedup is not
		// approximate — it is exactly N.
		if row.Speedup != float64(workers) {
			t.Fatalf("%d workers: speedup %v, want exactly %d", workers, row.Speedup, workers)
		}
		if row.Makespan >= one.Makespan {
			t.Fatalf("%d workers no faster than 1: %v >= %v", workers, row.Makespan, one.Makespan)
		}
	}
	// Determinism: the whole table reproduces bit for bit.
	again, err := ScaleOut(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Rows {
		if res.Rows[i] != again.Rows[i] {
			t.Fatalf("row %d not reproducible: %+v vs %+v", i, res.Rows[i], again.Rows[i])
		}
	}
}
