package trainer

// The trial prefix cache: PipeTune's second reuse axis (after the
// ground-truth store), exploiting that SGD progress depends only on
// (workload, corpus, training-relevant hyperparameters, seed) — never on
// the system configuration a trial happens to run under (Li et al.,
// "Exploiting Reuse in Pipeline-Aware Hyperparameter Tuning"). Two
// mechanisms share one keyed entry:
//
//   - the *trajectory cache*: the full per-epoch (loss, accuracy)
//     sequence plus the final network digest. A trial whose prefix was
//     already trained to at least its epoch budget replays the cached
//     curve and skips nn.TrainEpoch/Evaluate entirely — the sys-sweep
//     case, where Algorithm 1 explores many system configurations per
//     hyperparameter point.
//   - the *epoch checkpoint store*: the serialized network + shuffle-RNG
//     state after the deepest trained epoch. A trial sharing the hyper
//     prefix but wanting more epochs (a successive-halving rung
//     promotion, a larger Epochs setting) resumes from the checkpoint
//     instead of epoch 0.
//
// Replayed and resumed results are bit-identical to from-scratch runs:
// trajectories store the exact float64s, checkpoints restore the exact
// RNG and weight state, and the trainer's RNG streams for training and
// simulation are split independently. Memory is bounded by a strict byte
// cap with whole-entry LRU eviction, and a singleflight collapses
// concurrent identical prefixes into one training run.

import (
	"container/list"
	"strconv"
	"sync"

	"pipetune/internal/metrics"
	"pipetune/internal/nn"
)

// DefaultCacheBytes is the default trial-cache budget: enough for
// thousands of trajectories plus the handful of hot checkpoints a
// tuning job's rung structure produces.
const DefaultCacheBytes int64 = 64 << 20

// TrajPoint is one epoch's learning outcome — exactly the two numbers
// the simulation loop needs from SGD.
type TrajPoint struct {
	Loss float64
	Acc  float64
}

// checkpoint is a serialized (network, shuffle-RNG) snapshot after epoch.
type checkpoint struct {
	epoch  int
	data   []byte
	digest uint64
}

// cacheEntry is one prefix key's cached state: the trajectory as deep as
// it has ever been trained and the deepest checkpoint.
type cacheEntry struct {
	key   string
	elem  *list.Element
	traj  []TrajPoint // immutable once published; replaced, never appended
	ckpt  checkpoint
	bytes int64
}

// entryOverhead approximates the bookkeeping bytes an entry costs beyond
// its key, trajectory and checkpoint payloads.
const entryOverhead = 128

func (e *cacheEntry) size() int64 {
	return entryOverhead + int64(len(e.key)) + 16*int64(len(e.traj)) + int64(len(e.ckpt.data))
}

// CacheStats is a point-in-time counter snapshot, for tests, the reuse
// experiment and operators without a metrics registry.
type CacheStats struct {
	// TrajectoryHits replayed a fully cached learning curve;
	// CheckpointHits resumed from a cached epoch snapshot; FlightHits
	// waited on a concurrent identical prefix instead of training;
	// Misses trained from scratch.
	TrajectoryHits uint64
	CheckpointHits uint64
	FlightHits     uint64
	Misses         uint64
	// EpochsSaved counts epochs of SGD the cache avoided; EpochsTrained
	// counts epochs actually computed through the cache.
	EpochsSaved   uint64
	EpochsTrained uint64
	// Evictions counts entries dropped to stay under the byte cap.
	Evictions uint64
	// Entries and Bytes describe current residency.
	Entries int
	Bytes   int64
}

// cacheInstruments are the registry handles; all nil (no-op) until
// InstrumentMetrics runs.
type cacheInstruments struct {
	hits        *metrics.CounterVec // trainer_trial_cache_hits_total{kind}
	misses      *metrics.Counter
	epochsSaved *metrics.Counter
	evictions   *metrics.Counter
	bytes       *metrics.Gauge
	entries     *metrics.Gauge
	savedDist   *metrics.Distribution // epochs saved per hit
}

// TrialCache memoises learning trajectories and epoch checkpoints under
// a byte budget. Safe for concurrent use; one cache is typically shared
// by every trial a daemon (or a worker process) runs.
type TrialCache struct {
	max int64

	mu      sync.Mutex
	bytes   int64
	lru     *list.List // front = coldest
	entries map[string]*cacheEntry
	stats   CacheStats
	met     cacheInstruments

	flights flightGroup
}

// NewTrialCache builds a cache bounded to maxBytes (<= 0 selects
// DefaultCacheBytes).
func NewTrialCache(maxBytes int64) *TrialCache {
	if maxBytes <= 0 {
		maxBytes = DefaultCacheBytes
	}
	return &TrialCache{
		max:     maxBytes,
		lru:     list.New(),
		entries: make(map[string]*cacheEntry),
	}
}

// Cap returns the configured byte budget.
func (c *TrialCache) Cap() int64 { return c.max }

// Stats snapshots the cache counters.
func (c *TrialCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = len(c.entries)
	s.Bytes = c.bytes
	return s
}

// Digest returns the cached final-network digest for a key, if present.
func (c *TrialCache) Digest(key string) (uint64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e := c.entries[key]; e != nil && e.ckpt.epoch > 0 {
		return e.ckpt.digest, true
	}
	return 0, false
}

// CheckpointDepth returns the deepest checkpointed epoch stored for a key
// (0 when the key is absent or holds no checkpoint). The spot-recovery
// path uses it to decide how many epochs a revoked trial's replacement
// attempt can skip.
func (c *TrialCache) CheckpointDepth(key string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e := c.entries[key]; e != nil {
		return e.ckpt.epoch
	}
	return 0
}

// InstrumentMetrics registers the cache's families on reg and starts
// publishing. Call before concurrent use (the service wires it at
// construction). A nil registry yields nil handles: every update stays a
// no-op.
func (c *TrialCache) InstrumentMetrics(reg *metrics.Registry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.met = cacheInstruments{
		hits:        reg.CounterVec("trainer_trial_cache_hits_total", "Trial prefix cache hits by kind (trajectory replay, checkpoint resume, singleflight wait).", "kind"),
		misses:      reg.Counter("trainer_trial_cache_misses_total", "Trial prefixes trained from scratch."),
		epochsSaved: reg.Counter("trainer_trial_cache_epochs_saved_total", "Epochs of SGD avoided by the prefix cache."),
		evictions:   reg.Counter("trainer_trial_cache_evictions_total", "Cache entries evicted to stay under the byte cap."),
		bytes:       reg.Gauge("trainer_trial_cache_bytes", "Bytes resident in the trial prefix cache."),
		entries:     reg.Gauge("trainer_trial_cache_entries", "Entries resident in the trial prefix cache."),
		savedDist:   reg.Distribution("trainer_trial_cache_saved_epochs", "Epochs saved per cache hit."),
	}
	c.met.bytes.Set(float64(c.bytes))
	c.met.entries.Set(float64(len(c.entries)))
}

// hitLocked records a hit of the given kind that saved saved epochs.
// Callers hold c.mu.
func (c *TrialCache) hitLocked(kind string, saved int) {
	switch kind {
	case "trajectory":
		c.stats.TrajectoryHits++
	case "checkpoint":
		c.stats.CheckpointHits++
	case "singleflight":
		c.stats.FlightHits++
	}
	c.stats.EpochsSaved += uint64(saved)
	c.met.hits.With(kind).Inc()
	c.met.epochsSaved.Add(uint64(saved))
	c.met.savedDist.Observe(float64(saved))
}

// trainFunc computes the trajectory suffix from start (exclusive) to the
// requested depth: pts holds epochs start+1..depth in order and ckptData
// the serialized (network, shuffle-RNG) state after the last of them.
// ckpt is the snapshot to resume from when start > 0, nil for a
// from-scratch run.
type trainFunc func(start int, ckpt []byte) (pts []TrajPoint, ckptData []byte, err error)

// lookup returns the cached trajectory prefix when it is at least epochs
// deep. The returned slice is immutable shared state — read-only.
func (c *TrialCache) lookup(key string, epochs int) ([]TrajPoint, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entries[key]
	if e == nil || len(e.traj) < epochs {
		return nil, false
	}
	c.lru.MoveToBack(e.elem)
	c.hitLocked("trajectory", epochs)
	return e.traj[:epochs], true
}

// resumePoint finds the deepest usable checkpoint for a run to epochs:
// the trajectory prefix it covers, its epoch and a private copy of its
// data. A miss returns (nil, 0, nil). Counting happens here — exactly
// one of {checkpoint hit, miss} per actual training run.
func (c *TrialCache) resumePoint(key string, epochs int) (prefix []TrajPoint, start int, ckpt []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entries[key]
	if e != nil && e.ckpt.epoch > 0 && e.ckpt.epoch <= epochs && len(e.traj) >= e.ckpt.epoch {
		c.lru.MoveToBack(e.elem)
		start = e.ckpt.epoch
		prefix = e.traj[:start]
		ckpt = append([]byte(nil), e.ckpt.data...)
		c.hitLocked("checkpoint", start)
		return prefix, start, ckpt
	}
	c.stats.Misses++
	c.met.misses.Inc()
	return nil, 0, nil
}

// merge publishes a training run's outcome: the full trajectory (prefix
// + freshly trained suffix) and, when deeper than what is stored, the
// new checkpoint. Returns the full trajectory for the caller.
func (c *TrialCache) merge(key string, prefix, pts []TrajPoint, ckptEpoch int, ckptData []byte) []TrajPoint {
	full := make([]TrajPoint, 0, len(prefix)+len(pts))
	full = append(full, prefix...)
	full = append(full, pts...)

	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.EpochsTrained += uint64(len(pts))
	e := c.entries[key]
	if e == nil {
		e = &cacheEntry{key: key}
		e.elem = c.lru.PushBack(e)
		c.entries[key] = e
	}
	old := e.bytes
	if len(full) > len(e.traj) {
		e.traj = full
	}
	if ckptEpoch > e.ckpt.epoch {
		e.ckpt = checkpoint{epoch: ckptEpoch, data: ckptData, digest: nn.StateDigest(ckptData)}
	}
	e.bytes = e.size()
	c.bytes += e.bytes - old
	c.lru.MoveToBack(e.elem)
	c.evictLocked()
	c.met.bytes.Set(float64(c.bytes))
	c.met.entries.Set(float64(len(c.entries)))
	return full
}

// evictLocked drops coldest-first whole entries until the cache fits its
// budget. The freshly touched entry is not exempt: a single entry larger
// than the cap is evicted too, keeping residency under the cap always
// (such a prefix simply retrains every time).
func (c *TrialCache) evictLocked() {
	for c.bytes > c.max && c.lru.Len() > 0 {
		front := c.lru.Front()
		e := front.Value.(*cacheEntry)
		c.lru.Remove(front)
		delete(c.entries, e.key)
		c.bytes -= e.bytes
		c.stats.Evictions++
		c.met.evictions.Inc()
	}
}

// trajectory returns the (loss, accuracy) sequence for epochs 1..epochs
// under the prefix key, training (via train) only the suffix the cache
// cannot supply. Concurrent callers with the same key and depth share
// one training run. Errors are never cached.
func (c *TrialCache) trajectory(key string, epochs int, train trainFunc) ([]TrajPoint, error) {
	if pts, ok := c.lookup(key, epochs); ok {
		return pts, nil
	}
	fkey := key + "#" + strconv.Itoa(epochs)
	v, err, shared := c.flights.Do(fkey, func() (any, error) {
		// Re-check under flight leadership: a deeper run may have
		// published while this caller was acquiring the flight.
		if pts, ok := c.lookup(key, epochs); ok {
			return pts, nil
		}
		prefix, start, ckpt := c.resumePoint(key, epochs)
		pts, ckptData, err := train(start, ckpt)
		if err != nil {
			return nil, err
		}
		return c.merge(key, prefix, pts, epochs, ckptData), nil
	})
	if err != nil {
		return nil, err
	}
	if shared {
		c.mu.Lock()
		c.hitLocked("singleflight", epochs)
		c.mu.Unlock()
	}
	return v.([]TrajPoint), nil
}
