// Package trainer is the training-framework substrate (the paper uses BigDL
// on Spark, §6): it executes one training trial epoch by epoch, producing
// for every epoch the quantities the rest of the system consumes —
//
//   - genuine SGD learning progress (loss/accuracy) from package nn,
//   - simulated epoch duration from package costmodel,
//   - energy from package energy (power series recorded to the tsdb),
//   - a 58-event PMU profile from package perf.
//
// Crucially for PipeTune, the trainer exposes an EpochObserver invoked at
// every epoch boundary which may change the system configuration for the
// remaining epochs — the mechanism behind Algorithm 1's pipelined
// tuneSystem: system tuning proceeds *inside* the trial without pausing it.
package trainer

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"pipetune/internal/costmodel"
	"pipetune/internal/dataset"
	"pipetune/internal/energy"
	"pipetune/internal/metrics"
	"pipetune/internal/nn"
	"pipetune/internal/params"
	"pipetune/internal/perf"
	"pipetune/internal/tsdb"
	"pipetune/internal/workload"
	"pipetune/internal/xrand"
)

// EpochStats describes one completed epoch (or the init phase, Epoch = 0
// with Init = true).
type EpochStats struct {
	Epoch     int              `json:"epoch"` // 1-based; 0 for init
	Init      bool             `json:"init"`
	Sys       params.SysConfig `json:"sys"`      // configuration this epoch ran with
	Duration  float64          `json:"duration"` // simulated seconds
	EndTime   float64          `json:"endTime"`  // simulated time at epoch end
	TrainLoss float64          `json:"trainLoss"`
	Accuracy  float64          `json:"accuracy"` // test accuracy after this epoch
	EnergyJ   float64          `json:"energyJ"`
	Profile   perf.Profile     `json:"-"`
}

// Result is the outcome of a full trial.
type Result struct {
	Workload workload.Workload `json:"workload"`
	Hyper    params.Hyper      `json:"hyper"`
	FinalSys params.SysConfig  `json:"finalSys"`
	Accuracy float64           `json:"accuracy"` // final test accuracy
	Duration float64           `json:"duration"` // total simulated seconds (init + epochs)
	EnergyJ  float64           `json:"energyJ"`
	Epochs   []EpochStats      `json:"epochs"`
}

// Clone returns a deep copy sharing no mutable memory with the receiver,
// so a caller handed a Result can never corrupt the original.
func (r *Result) Clone() *Result {
	if r == nil {
		return nil
	}
	cp := *r
	if r.Epochs != nil { // preserve nil-ness: Save/Load round-trips stay bit-identical
		cp.Epochs = make([]EpochStats, len(r.Epochs))
		for i, e := range r.Epochs {
			e.Profile = append(perf.Profile(nil), e.Profile...)
			cp.Epochs[i] = e
		}
	}
	return &cp
}

// EpochObserver receives epoch-boundary callbacks. Returning a non-nil
// configuration switches the trial's system parameters for subsequent
// epochs (the cluster allocation is the caller's concern). Observers run
// synchronously inside the trial.
type EpochObserver interface {
	OnEpochEnd(trialSeed uint64, w workload.Workload, h params.Hyper, s EpochStats) *params.SysConfig
}

// ObserverFunc adapts a function to EpochObserver.
type ObserverFunc func(trialSeed uint64, w workload.Workload, h params.Hyper, s EpochStats) *params.SysConfig

// OnEpochEnd implements EpochObserver.
func (f ObserverFunc) OnEpochEnd(seed uint64, w workload.Workload, h params.Hyper, s EpochStats) *params.SysConfig {
	return f(seed, w, h, s)
}

// Runner executes trials. It is safe for concurrent use: per-trial state is
// local, and the dataset cache and tsdb are lock-protected.
type Runner struct {
	Cost    costmodel.Model
	Power   energy.PowerModel
	Sampler *perf.Sampler
	Data    dataset.Config

	// DB, when non-nil, receives 1 Hz power samples ("power") and
	// per-epoch profile summaries ("epochs") exactly like the paper's
	// InfluxDB backend.
	DB *tsdb.DB

	// Load is the contention multiplier applied to every epoch duration
	// (1 = dedicated resources; >1 = co-located jobs, Figure 5's setup).
	Load float64

	// DataSeed seeds corpus synthesis. It is deliberately independent of
	// trial seeds: all trials of a workload see the same corpus, exactly
	// as all trials of a real HPT job read the same dataset.
	DataSeed uint64

	// Cache, when non-nil, is the trial prefix cache: trials sharing a
	// training prefix (same workload, corpus, training-relevant hyper
	// fields and seed — SysConfig never enters the key) replay or resume
	// cached SGD instead of recomputing it, bit-identically. Attach
	// before running trials; share one cache across all trials of a
	// process.
	Cache *TrialCache

	// Parallelism bounds deterministic intra-trial parallelism in the nn
	// compute kernels: up to this many goroutines shard per-sample-
	// independent work inside each epoch. 0 and 1 both mean serial.
	// Results are bit-identical at every degree (see nn's pool.go), which
	// is why Parallelism is deliberately excluded from PrefixKey: a
	// cached trajectory trained at one degree is valid at any other.
	Parallelism int

	mu            sync.Mutex
	cache         map[string]*corpusPair
	corpusFlights flightGroup
	corpusGens    atomic.Uint64 // distinct corpus syntheses (singleflight test hook)
	tsdbErrs      atomic.Pointer[metrics.Counter]
	epochSeconds  atomic.Pointer[metrics.Distribution]
	evalSeconds   atomic.Pointer[metrics.Distribution]
}

type corpusPair struct {
	train, test *dataset.Set
}

// NewRunner returns a Runner with the calibrated default models.
func NewRunner() *Runner {
	return &Runner{
		Cost:     costmodel.Default(),
		Power:    energy.DefaultPowerModel(),
		Sampler:  perf.NewSampler(),
		Data:     dataset.DefaultConfig(),
		Load:     1,
		DataSeed: 0x0da7a5eed,
	}
}

// corpus returns (and caches) the dataset split for a workload. The cache
// key includes only the dataset and sizes — matching the paper's reality
// that Type-II workloads share one corpus. Synthesis always uses DataSeed,
// never a trial seed, so concurrent trials cannot race on corpus identity;
// a singleflight collapses N concurrent first trials of a workload into
// one generation (still outside r.mu, so cached-corpus trials never wait
// behind a synthesis).
func (r *Runner) corpus(w workload.Workload) (*corpusPair, error) {
	key := w.Dataset.String() + "/" + strconv.Itoa(r.Data.TrainSize) + "/" + strconv.Itoa(r.Data.TestSize)
	r.mu.Lock()
	if r.cache == nil {
		r.cache = make(map[string]*corpusPair)
	}
	if cp, ok := r.cache[key]; ok {
		r.mu.Unlock()
		return cp, nil
	}
	r.mu.Unlock()

	v, err, _ := r.corpusFlights.Do(key, func() (any, error) {
		// A previous flight may have published while this caller was
		// between the map check and the flight.
		r.mu.Lock()
		cp, ok := r.cache[key]
		r.mu.Unlock()
		if ok {
			return cp, nil
		}
		r.corpusGens.Add(1)
		train, test, err := dataset.Generate(w, r.DataSeed, r.Data)
		if err != nil {
			return nil, err
		}
		cp = &corpusPair{train: train, test: test}
		r.mu.Lock()
		r.cache[key] = cp
		r.mu.Unlock()
		return cp, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*corpusPair), nil
}

// InstrumentMetrics registers the trainer's instruments on reg: the tsdb
// write-error counter and, when a trial prefix cache is attached, its
// hit/miss/residency families. Call before running trials. A nil
// registry (metrics disabled) keeps every update a no-op.
func (r *Runner) InstrumentMetrics(reg *metrics.Registry) {
	r.tsdbErrs.Store(reg.Counter("trainer_tsdb_write_errors_total", "Epoch summaries and power points the trainer failed to write to the tsdb."))
	r.epochSeconds.Store(reg.Distribution("nn_train_epoch_seconds", "Wall-clock seconds per nn training epoch (real SGD compute, not the simulated epoch duration)."))
	r.evalSeconds.Store(reg.Distribution("nn_eval_seconds", "Wall-clock seconds per nn test-set evaluation."))
	p := r.Parallelism
	if p < 1 {
		p = 1
	}
	reg.Gauge("nn_parallelism", "Configured deterministic intra-trial kernel parallelism degree.").Set(float64(p))
	if r.Cache != nil {
		r.Cache.InstrumentMetrics(reg)
	}
}

// InstrumentKernels points the kernel wall-time sketches at caller-owned
// distributions instead of a registry — the worker agents use this to
// ship per-session kernel latency on heartbeats the same way they ship
// trial seconds. Either instrumentation path may be re-pointed at any
// time; nil distributions turn observation back into a no-op.
func (r *Runner) InstrumentKernels(epoch, eval *metrics.Distribution) {
	r.epochSeconds.Store(epoch)
	r.evalSeconds.Store(eval)
}

// TSDBWriteErrors returns the count of discarded tsdb writes observed
// since InstrumentMetrics; zero when uninstrumented.
func (r *Runner) TSDBWriteErrors() uint64 {
	if c := r.tsdbErrs.Load(); c != nil {
		return c.Value()
	}
	return 0
}

// record writes an epoch's power series and summary to the tsdb, tagged by
// trial, mirroring the InfluxDB layout of §6.
func (r *Runner) record(trialSeed uint64, w workload.Workload, s EpochStats, series []float64) {
	if r.DB == nil {
		return
	}
	tags := map[string]string{
		"trial":    strconv.FormatUint(trialSeed, 10),
		"workload": w.Name(),
	}
	start := s.EndTime - s.Duration
	for i, watts := range series {
		if err := r.DB.Write("power", tsdb.Point{
			Time:   start + float64(i),
			Tags:   tags,
			Fields: map[string]float64{"watts": watts},
		}); err != nil {
			r.tsdbErrs.Load().Inc()
		}
	}
	if err := r.DB.Write("epochs", tsdb.Point{
		Time: s.EndTime,
		Tags: tags,
		Fields: map[string]float64{
			"epoch":    float64(s.Epoch),
			"duration": s.Duration,
			"accuracy": s.Accuracy,
			"energyJ":  s.EnergyJ,
			"cores":    float64(s.Sys.Cores),
			"memoryGB": float64(s.Sys.MemoryGB),
		},
	}); err != nil {
		r.tsdbErrs.Load().Inc()
	}
}

// PrefixKey derives the trial prefix cache key: every input SGD progress
// depends on — the workload (model and dataset), the corpus (sizes and
// DataSeed), the training-relevant Hyper fields (batch size, learning
// rate, dropout, embedding dim; float64s as exact bit patterns) and the
// trial seed. Epochs is deliberately excluded (it is the prefix axis the
// cache extends along), and so are SysConfig, Load and the cost/power
// models — they shape the simulation, never the learning curve.
func (r *Runner) PrefixKey(w workload.Workload, h params.Hyper, seed uint64) string {
	b := make([]byte, 0, 96)
	b = append(b, "v1|"...)
	b = strconv.AppendInt(b, int64(w.Model), 10)
	b = append(b, '/')
	b = strconv.AppendInt(b, int64(w.Dataset), 10)
	b = append(b, '|')
	b = strconv.AppendUint(b, r.DataSeed, 10)
	b = append(b, '/')
	b = strconv.AppendInt(b, int64(r.Data.TrainSize), 10)
	b = append(b, '/')
	b = strconv.AppendInt(b, int64(r.Data.TestSize), 10)
	b = append(b, '|')
	b = strconv.AppendInt(b, int64(h.BatchSize), 10)
	b = append(b, '/')
	b = strconv.AppendUint(b, math.Float64bits(h.LearningRate), 16)
	b = append(b, '/')
	b = strconv.AppendUint(b, math.Float64bits(h.Dropout), 16)
	b = append(b, '/')
	b = strconv.AppendInt(b, int64(h.EmbeddingDim), 10)
	b = append(b, '|')
	b = strconv.AppendUint(b, seed, 16)
	return string(b)
}

// buildNet constructs the trial network and applies the runner's kernel
// parallelism degree (a pure scheduling knob: the trained bits do not
// depend on it).
func (r *Runner) buildNet(w workload.Workload, cp *corpusPair, h params.Hyper, netRng *xrand.Source) (*nn.Network, error) {
	net, err := nn.Build(w.Model, cp.train.Dim, cp.train.NumClasses, h, netRng)
	if err != nil {
		return nil, fmt.Errorf("trainer: %w", err)
	}
	net.SetParallelism(r.Parallelism)
	return net, nil
}

// trainEpoch runs one real SGD epoch, observing its wall time into the
// nn_train_epoch_seconds sketch.
func (r *Runner) trainEpoch(net *nn.Network, set *dataset.Set, h params.Hyper, rng *xrand.Source) (float64, error) {
	t0 := time.Now()
	loss, err := net.TrainEpoch(set, h.BatchSize, h.LearningRate, rng)
	r.epochSeconds.Load().Observe(time.Since(t0).Seconds())
	return loss, err
}

// evaluate runs a test-set evaluation, observing its wall time into the
// nn_eval_seconds sketch.
func (r *Runner) evaluate(net *nn.Network, set *dataset.Set) (float64, float64, error) {
	t0 := time.Now()
	acc, loss, err := net.Evaluate(set)
	r.evalSeconds.Load().Observe(time.Since(t0).Seconds())
	return acc, loss, err
}

// ckptVersion versions the checkpoint blob layout.
const ckptVersion = 1

// ckptHeaderLen is the version byte plus the shuffle RNG's 4×u64 state.
const ckptHeaderLen = 1 + 4*8

// captureCheckpoint serializes the state a resumed run needs: the shuffle
// RNG stream position and the network's mutable training state.
func captureCheckpoint(net *nn.Network, shuffle *xrand.Source) []byte {
	buf := make([]byte, 0, 1024)
	buf = append(buf, ckptVersion)
	for _, v := range shuffle.State() {
		buf = binary.LittleEndian.AppendUint64(buf, v)
	}
	return net.CaptureState(buf)
}

// restoreCheckpoint applies a captured checkpoint to a freshly built
// network and its shuffle RNG.
func restoreCheckpoint(data []byte, net *nn.Network, shuffle *xrand.Source) error {
	if len(data) < ckptHeaderLen || data[0] != ckptVersion {
		return errors.New("invalid checkpoint blob")
	}
	var st [4]uint64
	for i := range st {
		st[i] = binary.LittleEndian.Uint64(data[1+8*i:])
	}
	shuffle.SetState(st)
	return net.RestoreState(data[ckptHeaderLen:])
}

// Run executes one trial of w with hyperparameters h, starting from system
// configuration sys. The observer (optional) can re-configure the system at
// each epoch boundary. All randomness derives from seed.
func (r *Runner) Run(w workload.Workload, h params.Hyper, sys params.SysConfig, seed uint64, obs EpochObserver) (*Result, error) {
	return r.RunWithCacheKey(w, h, sys, seed, obs, "")
}

// RunWithCacheKey is Run with an explicit prefix-cache key hint: remote
// workers pass the key the daemon stamped on the lease so key derivation
// cannot diverge across processes. An empty hint derives the key locally;
// without an attached Cache the hint is ignored entirely.
func (r *Runner) RunWithCacheKey(w workload.Workload, h params.Hyper, sys params.SysConfig, seed uint64, obs EpochObserver, cacheKey string) (*Result, error) {
	if err := h.Validate(); err != nil {
		return nil, fmt.Errorf("trainer: %w", err)
	}
	if err := sys.Validate(); err != nil {
		return nil, fmt.Errorf("trainer: %w", err)
	}
	if r.Sampler == nil {
		return nil, errors.New("trainer: nil perf sampler")
	}
	load := r.Load
	if load < 1 {
		load = 1
	}
	tr := workload.TraitsFor(w)
	cp, err := r.corpus(w)
	if err != nil {
		return nil, fmt.Errorf("trainer: %w", err)
	}

	// The RNG split order is load-bearing: training streams (netRng,
	// shuffleRng) come before and are independent of the simulation
	// streams (perfRng, powerRng), so the prefix cache may replay or
	// resume SGD without touching the simulated profile/power draws —
	// the replayed result stays bit-identical to an uncached run.
	rng := xrand.New(seed)
	netRng := rng.Split()
	shuffleRng := rng.Split()
	perfRng := rng.Split()
	powerRng := rng.Split()

	// epochValues supplies epoch e's (loss, accuracy). Uncached, it is
	// the literal pre-cache training step, run lazily inside the
	// simulation loop; cached, the whole trajectory is resolved up front
	// (replayed, resumed from a checkpoint, or trained and stored) and
	// the loop just reads it.
	var epochValues func(epoch int) (TrajPoint, error)
	trainSuffix := func(start int, ckpt []byte) ([]TrajPoint, []byte, error) {
		net, err := r.buildNet(w, cp, h, netRng)
		if err != nil {
			return nil, nil, err
		}
		if start > 0 {
			if err := restoreCheckpoint(ckpt, net, shuffleRng); err != nil {
				return nil, nil, fmt.Errorf("trainer: resume at epoch %d: %w", start, err)
			}
		}
		pts := make([]TrajPoint, 0, h.Epochs-start)
		for epoch := start + 1; epoch <= h.Epochs; epoch++ {
			loss, err := r.trainEpoch(net, cp.train, h, shuffleRng)
			if err != nil {
				return nil, nil, fmt.Errorf("trainer: epoch %d: %w", epoch, err)
			}
			acc, _, err := r.evaluate(net, cp.test)
			if err != nil {
				return nil, nil, fmt.Errorf("trainer: epoch %d eval: %w", epoch, err)
			}
			pts = append(pts, TrajPoint{Loss: loss, Acc: acc})
		}
		return pts, captureCheckpoint(net, shuffleRng), nil
	}
	if c := r.Cache; c != nil {
		if cacheKey == "" {
			cacheKey = r.PrefixKey(w, h, seed)
		}
		pts, err := c.trajectory(cacheKey, h.Epochs, trainSuffix)
		if err != nil {
			return nil, err
		}
		epochValues = func(epoch int) (TrajPoint, error) { return pts[epoch-1], nil }
	} else {
		net, err := r.buildNet(w, cp, h, netRng)
		if err != nil {
			return nil, err
		}
		epochValues = func(epoch int) (TrajPoint, error) {
			loss, err := r.trainEpoch(net, cp.train, h, shuffleRng)
			if err != nil {
				return TrajPoint{}, fmt.Errorf("trainer: epoch %d: %w", epoch, err)
			}
			acc, _, err := r.evaluate(net, cp.test)
			if err != nil {
				return TrajPoint{}, fmt.Errorf("trainer: epoch %d eval: %w", epoch, err)
			}
			return TrajPoint{Loss: loss, Acc: acc}, nil
		}
	}

	res := &Result{Workload: w, Hyper: h, FinalSys: sys}
	clock := 0.0

	runPhase := func(epoch int, init bool, trainLoss, acc float64) (EpochStats, error) {
		var duration float64
		var computeFrac float64
		if init {
			duration = r.Cost.InitDuration(tr)
			computeFrac = 0.3 // I/O-heavy
		} else {
			bd, err := r.Cost.EpochBreakdown(tr, h, sys)
			if err != nil {
				return EpochStats{}, err
			}
			duration, err = r.Cost.EpochDuration(tr, h, sys)
			if err != nil {
				return EpochStats{}, err
			}
			computeFrac = bd.ComputeFraction()
		}
		duration = costmodel.WithLoad(duration, load)
		clock += duration

		phase := perf.PhaseTrain
		if init {
			phase = perf.PhaseInit
		}
		profile, err := r.Sampler.EpochProfile(perfRng, tr, h, sys, phase, duration)
		if err != nil {
			return EpochStats{}, err
		}
		series, err := r.Power.Series(powerRng, sys, computeFrac, duration)
		if err != nil {
			return EpochStats{}, err
		}
		joules := energy.Integrate(series)

		s := EpochStats{
			Epoch:     epoch,
			Init:      init,
			Sys:       sys,
			Duration:  duration,
			EndTime:   clock,
			TrainLoss: trainLoss,
			Accuracy:  acc,
			EnergyJ:   joules,
			Profile:   profile,
		}
		r.record(seed, w, s, series)
		return s, nil
	}

	// Init phase (Figure 2's "Init." column).
	initStats, err := runPhase(0, true, 0, 0)
	if err != nil {
		return nil, fmt.Errorf("trainer: init phase: %w", err)
	}
	res.Epochs = append(res.Epochs, initStats)
	res.EnergyJ += initStats.EnergyJ

	for epoch := 1; epoch <= h.Epochs; epoch++ {
		p, err := epochValues(epoch)
		if err != nil {
			return nil, err
		}
		s, err := runPhase(epoch, false, p.Loss, p.Acc)
		if err != nil {
			return nil, fmt.Errorf("trainer: epoch %d: %w", epoch, err)
		}
		res.Epochs = append(res.Epochs, s)
		res.EnergyJ += s.EnergyJ
		res.Accuracy = p.Acc

		if obs != nil {
			if next := obs.OnEpochEnd(seed, w, h, s); next != nil {
				if err := next.Validate(); err != nil {
					return nil, fmt.Errorf("trainer: observer returned invalid config: %w", err)
				}
				sys = *next
			}
		}
	}
	res.FinalSys = sys
	res.Duration = clock
	return res, nil
}

// PredictDuration estimates a full trial duration without training — used
// by schedulers that need service-time estimates (multi-tenancy traces).
func (r *Runner) PredictDuration(w workload.Workload, h params.Hyper, sys params.SysConfig) (float64, error) {
	d, err := r.Cost.TrialDuration(workload.TraitsFor(w), h, sys)
	if err != nil {
		return 0, err
	}
	load := r.Load
	if load < 1 {
		load = 1
	}
	return costmodel.WithLoad(d, load), nil
}
