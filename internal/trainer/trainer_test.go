package trainer

import (
	"sync"
	"testing"

	"pipetune/internal/dataset"
	"pipetune/internal/params"
	"pipetune/internal/perf"
	"pipetune/internal/tsdb"
	"pipetune/internal/workload"
)

var lenetMNIST = workload.Workload{Model: workload.LeNet5, Dataset: workload.MNIST}

func fastRunner() *Runner {
	r := NewRunner()
	r.Data = dataset.Config{TrainSize: 384, TestSize: 128}
	return r
}

func fastHyper() params.Hyper {
	h := params.DefaultHyper()
	h.Epochs = 3
	h.LearningRate = 0.05
	return h
}

func TestRunProducesEpochs(t *testing.T) {
	r := fastRunner()
	h := fastHyper()
	res, err := r.Run(lenetMNIST, h, params.DefaultSysConfig(), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	// init + 3 epochs
	if len(res.Epochs) != 4 {
		t.Fatalf("got %d phases, want 4", len(res.Epochs))
	}
	if !res.Epochs[0].Init || res.Epochs[0].Epoch != 0 {
		t.Fatalf("first phase should be init: %+v", res.Epochs[0])
	}
	for i, e := range res.Epochs[1:] {
		if e.Epoch != i+1 || e.Init {
			t.Fatalf("epoch %d malformed: %+v", i+1, e)
		}
		if e.Duration <= 0 || e.EnergyJ <= 0 {
			t.Fatalf("epoch %d has non-positive duration/energy: %+v", e.Epoch, e)
		}
		if len(e.Profile) != perf.NumEvents {
			t.Fatalf("epoch %d profile has %d events", e.Epoch, len(e.Profile))
		}
	}
	if res.Accuracy <= 0.2 {
		t.Fatalf("final accuracy %v suspiciously low", res.Accuracy)
	}
	if res.Duration <= 0 {
		t.Fatal("zero total duration")
	}
}

func TestRunDeterministic(t *testing.T) {
	r1, r2 := fastRunner(), fastRunner()
	h := fastHyper()
	a, err := r1.Run(lenetMNIST, h, params.DefaultSysConfig(), 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r2.Run(lenetMNIST, h, params.DefaultSysConfig(), 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Accuracy != b.Accuracy || a.Duration != b.Duration || a.EnergyJ != b.EnergyJ {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

// TestParallelismIsBitIdentical pins the kernel-parallelism contract at
// the trainer level: the complete trial result — accuracy, per-epoch
// losses, durations, energy, profiles — is identical at every degree,
// so Parallelism can stay out of the trial prefix cache key.
func TestParallelismIsBitIdentical(t *testing.T) {
	h := fastHyper()
	run := func(par int) *Result {
		r := fastRunner()
		r.Parallelism = par
		res, err := r.Run(lenetMNIST, h, params.DefaultSysConfig(), 11, nil)
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		return res
	}
	want := run(0)
	for _, par := range []int{2, 8} {
		got := run(par)
		if got.Accuracy != want.Accuracy || got.Duration != want.Duration || got.EnergyJ != want.EnergyJ {
			t.Fatalf("parallelism %d diverged from serial: %+v vs %+v", par, got, want)
		}
		if len(got.Epochs) != len(want.Epochs) {
			t.Fatalf("parallelism %d epoch count %d, want %d", par, len(got.Epochs), len(want.Epochs))
		}
		for i := range got.Epochs {
			if got.Epochs[i].TrainLoss != want.Epochs[i].TrainLoss || got.Epochs[i].Accuracy != want.Epochs[i].Accuracy {
				t.Fatalf("parallelism %d epoch %d diverged: %+v vs %+v", par, i, got.Epochs[i], want.Epochs[i])
			}
		}
	}
}

func TestObserverCanRetuneSystem(t *testing.T) {
	r := fastRunner()
	h := fastHyper()
	h.Epochs = 4
	target := params.SysConfig{Cores: 16, MemoryGB: 16}
	var seen []params.SysConfig
	obs := ObserverFunc(func(_ uint64, _ workload.Workload, _ params.Hyper, s EpochStats) *params.SysConfig {
		seen = append(seen, s.Sys)
		if s.Epoch == 1 {
			cfg := target
			return &cfg
		}
		return nil
	})
	res, err := r.Run(lenetMNIST, h, params.DefaultSysConfig(), 3, obs)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalSys != target {
		t.Fatalf("final sys = %+v, want %+v", res.FinalSys, target)
	}
	// Epoch 1 ran on the default; epochs 2.. on the target.
	if seen[0] != params.DefaultSysConfig() {
		t.Fatalf("epoch 1 sys = %+v", seen[0])
	}
	if seen[1] != target || seen[2] != target {
		t.Fatalf("post-switch epochs did not adopt target: %+v", seen)
	}
}

func TestObserverInvalidConfigRejected(t *testing.T) {
	r := fastRunner()
	obs := ObserverFunc(func(uint64, workload.Workload, params.Hyper, EpochStats) *params.SysConfig {
		return &params.SysConfig{Cores: 0, MemoryGB: 0}
	})
	if _, err := r.Run(lenetMNIST, fastHyper(), params.DefaultSysConfig(), 3, obs); err == nil {
		t.Fatal("invalid observer config accepted")
	}
}

func TestEpochDurationRespondsToSystemSwitch(t *testing.T) {
	// Switching from a bad to a good configuration mid-trial must shorten
	// the remaining epochs — the whole point of pipelined tuning.
	r := fastRunner()
	h := fastHyper()
	h.BatchSize = 1024
	h.Epochs = 4
	obs := ObserverFunc(func(_ uint64, _ workload.Workload, _ params.Hyper, s EpochStats) *params.SysConfig {
		if s.Epoch == 2 {
			return &params.SysConfig{Cores: 8, MemoryGB: 32}
		}
		return nil
	})
	res, err := r.Run(lenetMNIST, h, params.SysConfig{Cores: 4, MemoryGB: 4}, 5, obs)
	if err != nil {
		t.Fatal(err)
	}
	before := res.Epochs[2].Duration // epoch 2, still on 4 cores / starved memory
	after := res.Epochs[3].Duration  // epoch 3, on 8 cores / ample memory
	if after >= before {
		t.Fatalf("8-core/32GB epoch (%v s) not faster than 4-core/4GB (%v s) at batch 1024", after, before)
	}
}

func TestLoadSlowsTrialDown(t *testing.T) {
	r := fastRunner()
	res1, err := r.Run(lenetMNIST, fastHyper(), params.DefaultSysConfig(), 9, nil)
	if err != nil {
		t.Fatal(err)
	}
	loaded := fastRunner()
	loaded.Load = 3
	res3, err := loaded.Run(lenetMNIST, fastHyper(), params.DefaultSysConfig(), 9, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res3.Duration <= 2.9*res1.Duration {
		t.Fatalf("load 3 duration %v not ~3x dedicated %v", res3.Duration, res1.Duration)
	}
	if res3.Accuracy != res1.Accuracy {
		t.Fatal("contention should not change learning outcomes, only time")
	}
}

func TestRecordsToTSDB(t *testing.T) {
	r := fastRunner()
	r.DB = tsdb.New()
	res, err := r.Run(lenetMNIST, fastHyper(), params.DefaultSysConfig(), 11, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.DB.Len("power") == 0 {
		t.Fatal("no power samples recorded")
	}
	if got := r.DB.Len("epochs"); got != len(res.Epochs) {
		t.Fatalf("recorded %d epoch summaries, want %d", got, len(res.Epochs))
	}
	// Per-epoch mean power should be recoverable from the DB, as the
	// paper queries InfluxDB for per-window aggregates.
	mean, err := r.DB.MeanField("power", "watts", tsdb.Query{To: -1})
	if err != nil {
		t.Fatal(err)
	}
	if mean < 50 || mean > 200 {
		t.Fatalf("mean recorded power %v W implausible", mean)
	}
}

func TestValidationErrors(t *testing.T) {
	r := fastRunner()
	bad := fastHyper()
	bad.BatchSize = 0
	if _, err := r.Run(lenetMNIST, bad, params.DefaultSysConfig(), 1, nil); err == nil {
		t.Fatal("invalid hyper accepted")
	}
	if _, err := r.Run(lenetMNIST, fastHyper(), params.SysConfig{}, 1, nil); err == nil {
		t.Fatal("invalid sys accepted")
	}
	r.Sampler = nil
	if _, err := r.Run(lenetMNIST, fastHyper(), params.DefaultSysConfig(), 1, nil); err == nil {
		t.Fatal("nil sampler accepted")
	}
}

func TestPredictDuration(t *testing.T) {
	r := fastRunner()
	h := fastHyper()
	d, err := r.PredictDuration(lenetMNIST, h, params.DefaultSysConfig())
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Fatalf("predicted duration %v", d)
	}
	r.Load = 2
	d2, err := r.PredictDuration(lenetMNIST, h, params.DefaultSysConfig())
	if err != nil {
		t.Fatal(err)
	}
	if d2 <= d {
		t.Fatal("load did not raise predicted duration")
	}
}

func TestConcurrentTrialsShareRunner(t *testing.T) {
	r := fastRunner()
	r.DB = tsdb.New()
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			h := fastHyper()
			if _, err := r.Run(lenetMNIST, h, params.DefaultSysConfig(), seed, nil); err != nil {
				errs <- err
			}
		}(uint64(i + 1))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestAccuracyImprovesAcrossEpochs(t *testing.T) {
	r := fastRunner()
	h := fastHyper()
	h.Epochs = 6
	res, err := r.Run(lenetMNIST, h, params.DefaultSysConfig(), 13, nil)
	if err != nil {
		t.Fatal(err)
	}
	first := res.Epochs[1].Accuracy
	last := res.Epochs[len(res.Epochs)-1].Accuracy
	if last <= first {
		t.Fatalf("accuracy did not improve: epoch1=%v final=%v", first, last)
	}
}
