package trainer

import (
	"reflect"
	"runtime"
	"sync"
	"testing"

	"pipetune/internal/metrics"
	"pipetune/internal/params"
	"pipetune/internal/tsdb"
	"pipetune/internal/workload"
)

// cachedRunner is fastRunner with a trial prefix cache attached.
func cachedRunner(maxBytes int64) *Runner {
	r := fastRunner()
	r.Cache = NewTrialCache(maxBytes)
	return r
}

// mustRun fails the test on a trial error.
func mustRun(t testing.TB, r *Runner, w workload.Workload, h params.Hyper, sys params.SysConfig, seed uint64, obs EpochObserver) *Result {
	t.Helper()
	res, err := r.Run(w, h, sys, seed, obs)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestTrialCacheParityCatalog is the core bit-identity guarantee: for
// every workload in the Table 3 catalog, a cached trial — cold (miss,
// trained through the cache) and warm (trajectory replay) — equals the
// uncached trial in every field, including the simulated durations,
// energies and PMU profiles.
func TestTrialCacheParityCatalog(t *testing.T) {
	sys := params.DefaultSysConfig()
	for _, w := range workload.Catalog() {
		h := fastHyper()
		h.Epochs = 2
		plain := mustRun(t, fastRunner(), w, h, sys, 11, nil)
		cr := cachedRunner(0)
		cold := mustRun(t, cr, w, h, sys, 11, nil)
		warm := mustRun(t, cr, w, h, sys, 11, nil)
		if !reflect.DeepEqual(plain, cold) {
			t.Fatalf("%s: cold cached run differs from uncached", w.Name())
		}
		if !reflect.DeepEqual(plain, warm) {
			t.Fatalf("%s: warm (replayed) run differs from uncached", w.Name())
		}
		st := cr.Cache.Stats()
		if st.Misses != 1 || st.TrajectoryHits != 1 {
			t.Fatalf("%s: stats = %+v, want 1 miss + 1 trajectory hit", w.Name(), st)
		}
	}
}

// TestTrialCacheParityWithObserver exercises the sys-sweep shape: the
// same training prefix under different starting configurations and a
// mid-trial observer switch. The learning curve must replay from cache
// while the simulated quantities still respond to the configurations.
func TestTrialCacheParityWithObserver(t *testing.T) {
	h := fastHyper()
	h.Epochs = 4
	sweep := []params.SysConfig{{Cores: 4, MemoryGB: 8}, {Cores: 8, MemoryGB: 16}, {Cores: 16, MemoryGB: 32}}
	obs := ObserverFunc(func(_ uint64, _ workload.Workload, _ params.Hyper, s EpochStats) *params.SysConfig {
		if s.Epoch == 2 {
			return &params.SysConfig{Cores: 12, MemoryGB: 24}
		}
		return nil
	})
	cr := cachedRunner(0)
	for _, sys := range sweep {
		plain := mustRun(t, fastRunner(), lenetMNIST, h, sys, 21, obs)
		cached := mustRun(t, cr, lenetMNIST, h, sys, 21, obs)
		if !reflect.DeepEqual(plain, cached) {
			t.Fatalf("sys %v: cached run differs from uncached", sys)
		}
	}
	st := cr.Cache.Stats()
	if st.TrajectoryHits != uint64(len(sweep)-1) {
		t.Fatalf("sweep of %d configs: %d trajectory hits, want %d", len(sweep), st.TrajectoryHits, len(sweep)-1)
	}
	if want := uint64(h.Epochs * (len(sweep) - 1)); st.EpochsSaved != want {
		t.Fatalf("epochs saved = %d, want %d", st.EpochsSaved, want)
	}
}

// TestTrialCacheCheckpointResume proves resume-from-checkpoint equals
// from-scratch at every split epoch: training k epochs and then resuming
// to E must be bit-identical to training E epochs straight through.
func TestTrialCacheCheckpointResume(t *testing.T) {
	const full = 5
	h := fastHyper()
	sys := params.DefaultSysConfig()
	h.Epochs = full
	plain := mustRun(t, fastRunner(), lenetMNIST, h, sys, 33, nil)
	for k := 1; k < full; k++ {
		cr := cachedRunner(0)
		short := h
		short.Epochs = k
		mustRun(t, cr, lenetMNIST, short, sys, 33, nil)
		resumed := mustRun(t, cr, lenetMNIST, h, sys, 33, nil)
		if !reflect.DeepEqual(plain, resumed) {
			t.Fatalf("split at epoch %d: resumed run differs from straight-through", k)
		}
		st := cr.Cache.Stats()
		if st.CheckpointHits != 1 {
			t.Fatalf("split at epoch %d: %d checkpoint hits, want 1", k, st.CheckpointHits)
		}
		if st.EpochsSaved != uint64(k) {
			t.Fatalf("split at epoch %d: saved %d epochs, want %d", k, st.EpochsSaved, k)
		}
		if st.EpochsTrained != uint64(full) {
			t.Fatalf("split at epoch %d: trained %d epochs, want %d", k, st.EpochsTrained, full)
		}
	}
	// The resumed and straight-through networks must converge to the same
	// weights: same final checkpoint digest.
	straight := cachedRunner(0)
	mustRun(t, straight, lenetMNIST, h, sys, 33, nil)
	split := cachedRunner(0)
	short := h
	short.Epochs = 2
	mustRun(t, split, lenetMNIST, short, sys, 33, nil)
	mustRun(t, split, lenetMNIST, h, sys, 33, nil)
	key := straight.PrefixKey(lenetMNIST, h, 33)
	a, okA := straight.Cache.Digest(key)
	b, okB := split.Cache.Digest(key)
	if !okA || !okB || a != b {
		t.Fatalf("final network digests diverge: %x (%v) vs %x (%v)", a, okA, b, okB)
	}
}

// TestTrialCacheEviction pins the byte-cap discipline: a cache far too
// small for its working set evicts LRU entries and never exceeds the cap.
func TestTrialCacheEviction(t *testing.T) {
	cr := cachedRunner(1) // 1 byte: every entry is immediately over budget
	h := fastHyper()
	h.Epochs = 2
	sys := params.DefaultSysConfig()
	plain := mustRun(t, fastRunner(), lenetMNIST, h, sys, 1, nil)
	for seed := uint64(1); seed <= 4; seed++ {
		mustRun(t, cr, lenetMNIST, h, sys, seed, nil)
	}
	st := cr.Cache.Stats()
	if st.Bytes > cr.Cache.Cap() {
		t.Fatalf("resident %d bytes exceeds cap %d", st.Bytes, cr.Cache.Cap())
	}
	if st.Entries != 0 || st.Evictions != 4 {
		t.Fatalf("stats = %+v, want 0 entries and 4 evictions", st)
	}
	// Correctness is unaffected: an always-evicting cache just retrains.
	again := mustRun(t, cr, lenetMNIST, h, sys, 1, nil)
	if !reflect.DeepEqual(plain, again) {
		t.Fatalf("run through a thrashing cache differs from uncached")
	}
}

// TestTrialCacheChurnRace churns one small cache from many goroutines —
// mixed prefixes, mixed depths, constant eviction — and asserts the byte
// cap held. Run with -race this doubles as the cache's race suite.
func TestTrialCacheChurnRace(t *testing.T) {
	r := fastRunner()
	r.Data.TrainSize, r.Data.TestSize = 96, 32
	c := NewTrialCache(64 << 10) // a few entries' worth: constant eviction
	r.Cache = c
	reg := metrics.NewRegistry()
	r.InstrumentMetrics(reg)
	sys := params.DefaultSysConfig()
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				h := fastHyper()
				h.Epochs = 1 + (g+i)%3
				seed := uint64(1 + (g+i)%4)
				if _, err := r.Run(lenetMNIST, h, sys, seed, nil); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Bytes > c.Cap() {
		t.Fatalf("resident %d bytes exceeds cap %d under churn", st.Bytes, c.Cap())
	}
	total := st.TrajectoryHits + st.CheckpointHits + st.FlightHits + st.Misses
	if total == 0 {
		t.Fatal("no cache traffic recorded")
	}
}

// TestTrialCacheSingleflight pins the dedup: concurrent identical trials
// train the prefix once and the waiters count as singleflight hits.
func TestTrialCacheSingleflight(t *testing.T) {
	c := NewTrialCache(0)
	release := make(chan struct{})
	const n = 4
	var wg sync.WaitGroup
	var trained sync.Map
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pts, err := c.trajectory("k", 2, func(start int, _ []byte) ([]TrajPoint, []byte, error) {
				<-release // hold the flight open until all callers queued
				trained.Store(start, true)
				return []TrajPoint{{Loss: 1}, {Loss: 0.5}}, []byte{1, 2, 3}, nil
			})
			if err != nil || len(pts) != 2 {
				t.Errorf("trajectory: %v (%d pts)", err, len(pts))
			}
		}()
	}
	// Wait for the flight to open (the leader is inside), then release it.
	for {
		c.flights.mu.Lock()
		queued := len(c.flights.m) > 0
		c.flights.mu.Unlock()
		if queued {
			break
		}
		runtime.Gosched()
	}
	close(release)
	wg.Wait()
	st := c.Stats()
	if st.Misses != 1 {
		t.Fatalf("%d misses, want exactly 1 training run", st.Misses)
	}
	if st.FlightHits+st.TrajectoryHits != n-1 {
		t.Fatalf("stats = %+v: %d callers should have shared or replayed", st, n-1)
	}
	count := 0
	trained.Range(func(any, any) bool { count++; return true })
	if count != 1 {
		t.Fatalf("train ran %d times, want 1", count)
	}
}

// TestCorpusSingleflight pins the fix for the duplicate-generation race:
// N concurrent first trials of a workload synthesize its corpus once.
func TestCorpusSingleflight(t *testing.T) {
	r := fastRunner()
	const n = 8
	var wg sync.WaitGroup
	pairs := make([]*corpusPair, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			cp, err := r.corpus(lenetMNIST)
			if err != nil {
				t.Error(err)
				return
			}
			pairs[i] = cp
		}()
	}
	wg.Wait()
	if gens := r.corpusGens.Load(); gens != 1 {
		t.Fatalf("corpus generated %d times under %d concurrent trials, want 1", gens, n)
	}
	for i := 1; i < n; i++ {
		if pairs[i] != pairs[0] {
			t.Fatalf("caller %d got a different corpus instance", i)
		}
	}
}

// TestTrialCacheMetrics checks the registry families move with the cache.
func TestTrialCacheMetrics(t *testing.T) {
	r := cachedRunner(0)
	reg := metrics.NewRegistry()
	r.InstrumentMetrics(reg)
	h := fastHyper()
	h.Epochs = 2
	sys := params.DefaultSysConfig()
	mustRun(t, r, lenetMNIST, h, sys, 9, nil)
	mustRun(t, r, lenetMNIST, h, sys, 9, nil)
	snap := map[string]float64{}
	for _, fam := range reg.Snapshot().Families {
		for _, s := range fam.Samples {
			snap[fam.Name+labelSuffix(s.Labels)] += s.Value
		}
	}
	if snap["trainer_trial_cache_misses_total"] != 1 {
		t.Fatalf("misses counter = %v, want 1 (snapshot %v)", snap["trainer_trial_cache_misses_total"], snap)
	}
	if snap["trainer_trial_cache_hits_total{kind=trajectory}"] != 1 {
		t.Fatalf("trajectory hits counter = %v, want 1 (snapshot %v)", snap["trainer_trial_cache_hits_total{kind=trajectory}"], snap)
	}
	if snap["trainer_trial_cache_epochs_saved_total"] != float64(h.Epochs) {
		t.Fatalf("epochs-saved counter = %v, want %d", snap["trainer_trial_cache_epochs_saved_total"], h.Epochs)
	}
	if snap["trainer_trial_cache_bytes"] <= 0 || snap["trainer_trial_cache_entries"] != 1 {
		t.Fatalf("residency gauges: bytes=%v entries=%v", snap["trainer_trial_cache_bytes"], snap["trainer_trial_cache_entries"])
	}
}

func labelSuffix(labels map[string]string) string {
	if v, ok := labels["kind"]; ok {
		return "{kind=" + v + "}"
	}
	return ""
}

// TestTSDBWriteErrorsCounted pins satellite (b): record's discarded tsdb
// write errors land on trainer_tsdb_write_errors_total. The in-memory
// tsdb cannot fail a well-formed write, so the error path is driven
// through the counter seam: uninstrumented it reads zero and stays
// nil-safe, instrumented the increments surface through both the
// accessor and the registry.
func TestTSDBWriteErrorsCounted(t *testing.T) {
	r := fastRunner()
	r.DB = tsdb.New()
	h := fastHyper()
	h.Epochs = 1
	// Uninstrumented: record's error path must be a nil-safe no-op.
	r.tsdbErrs.Load().Inc()
	if got := r.TSDBWriteErrors(); got != 0 {
		t.Fatalf("uninstrumented counter reads %d, want 0", got)
	}
	reg := metrics.NewRegistry()
	r.InstrumentMetrics(reg)
	mustRun(t, r, lenetMNIST, h, params.DefaultSysConfig(), 2, nil)
	if got := r.TSDBWriteErrors(); got != 0 {
		t.Fatalf("successful writes counted as errors: %d", got)
	}
	r.tsdbErrs.Load().Inc() // the exact call record makes on a failed write
	if got := r.TSDBWriteErrors(); got != 1 {
		t.Fatalf("counter = %d after one discarded write, want 1", got)
	}
}

// BenchmarkTrialCache is the acceptance benchmark: the two reuse shapes
// the cache exists for, each cached and uncached. sys-sweep replays one
// trained prefix across many system configurations (Algorithm 1's inner
// loop); rung-promotion resumes a short trial's checkpoint into a longer
// one (HyperBand budget growth).
func BenchmarkTrialCache(b *testing.B) {
	sys := []params.SysConfig{{Cores: 4, MemoryGB: 8}, {Cores: 8, MemoryGB: 16}, {Cores: 12, MemoryGB: 24}, {Cores: 16, MemoryGB: 32}}
	sweep := func(b *testing.B, r *Runner) {
		h := fastHyper()
		h.Epochs = 4
		trials := 0
		for i := 0; i < b.N; i++ {
			for _, s := range sys {
				if _, err := r.Run(lenetMNIST, h, s, 17, nil); err != nil {
					b.Fatal(err)
				}
				trials++
			}
		}
		b.ReportMetric(float64(trials)/b.Elapsed().Seconds(), "trials/sec")
		if r.Cache != nil {
			st := r.Cache.Stats()
			b.ReportMetric(float64(st.EpochsTrained), "epochs-trained")
			b.ReportMetric(float64(st.EpochsSaved), "epochs-saved")
		}
	}
	promote := func(b *testing.B, fresh func() *Runner) {
		short := fastHyper()
		short.Epochs = 2
		full := fastHyper()
		full.Epochs = 6
		trials := 0
		for i := 0; i < b.N; i++ {
			r := fresh()
			if _, err := r.Run(lenetMNIST, short, sys[0], 17, nil); err != nil {
				b.Fatal(err)
			}
			if _, err := r.Run(lenetMNIST, full, sys[0], 17, nil); err != nil {
				b.Fatal(err)
			}
			trials += 2
		}
		b.ReportMetric(float64(trials)/b.Elapsed().Seconds(), "trials/sec")
	}
	b.Run("sys-sweep/uncached", func(b *testing.B) { sweep(b, fastRunner()) })
	b.Run("sys-sweep/cached", func(b *testing.B) { sweep(b, cachedRunner(0)) })
	b.Run("rung-promotion/uncached", func(b *testing.B) { promote(b, fastRunner) })
	b.Run("rung-promotion/cached", func(b *testing.B) { promote(b, func() *Runner { return cachedRunner(0) }) })
}
