package trainer

// A minimal singleflight: concurrent callers of Do with the same key run
// fn once and all receive its outcome. Used twice in this package — to
// collapse duplicate corpus synthesis (N concurrent first trials of a
// workload generate the corpus once) and to collapse duplicate prefix
// training in the trial cache (concurrent identical prefixes train
// once). Hand-rolled because the module deliberately has no external
// dependencies.

import "sync"

// flight is one in-progress call.
type flight struct {
	done chan struct{}
	val  any
	err  error
}

// flightGroup deduplicates concurrent calls by key. The zero value is
// ready to use.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

// Do executes fn once per key among concurrent callers: the first caller
// runs it, the rest block until it finishes and share the same (val,
// err). shared reports whether the result came from another caller's
// execution. Once the leader returns, the key is forgotten — a later Do
// runs fn again (the caller's own cache decides whether that is needed).
func (g *flightGroup) Do(key string, fn func() (any, error)) (val any, err error, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flight)
	}
	if f, ok := g.m[key]; ok {
		g.mu.Unlock()
		<-f.done
		return f.val, f.err, true
	}
	f := &flight{done: make(chan struct{})}
	g.m[key] = f
	g.mu.Unlock()

	f.val, f.err = fn()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(f.done)
	return f.val, f.err, false
}
