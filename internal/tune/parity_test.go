package tune

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"

	"pipetune/internal/cluster"
	"pipetune/internal/dataset"
	"pipetune/internal/exec"
	"pipetune/internal/params"
	"pipetune/internal/sched"
	"pipetune/internal/search"
	"pipetune/internal/trainer"
	"pipetune/internal/workload"
)

// This file is the execution-plane parity suite: the pre-refactor trial
// execution path — runTrial and the inline goroutine-pool runBatch that
// lived in Runner before internal/exec was carved out — is preserved
// below VERBATIM as legacyRunTrial/legacyRunBatch/legacyRunJob, and
// every workload of the Table 3 catalog must produce a bit-identical
// JobResult (JSON serialisation compared byte for byte) on the new
// exec.Local backend. Placement-policy coverage: FIFO (the default and
// the paper's order) across the whole catalog, SJF and backfill on a
// spot-check workload. The job-dispatch "fair" policy lives a layer up
// (internal/admission); its parity guarantee is pinned by the service
// suite (TestFIFOParitySchedule and the remote-backend equality tests).

// legacyRunTrial is the pre-refactor Runner.runTrial, verbatim.
func legacyRunTrial(r *Runner, spec JobSpec, sug search.Suggestion) (TrialRecord, error) {
	h := sug.Assignment.ApplyHyper(spec.BaseHyper)
	if sug.BudgetFrac > 0 && sug.BudgetFrac < 1 {
		scaled := int(float64(h.Epochs)*sug.BudgetFrac + 0.5)
		if scaled < 1 {
			scaled = 1
		}
		h.Epochs = scaled
	}
	sys := spec.BaseSys
	if spec.Mode == ModeV2 {
		sys = sug.Assignment.ApplySys(spec.BaseSys)
		if !r.Cluster.Fits(sys) {
			return TrialRecord{}, fmt.Errorf("tune: trial config %v does not fit the cluster", sys)
		}
	}
	var obs trainer.EpochObserver
	if spec.TrialObserver != nil {
		obs = spec.TrialObserver(sug.ID)
	}
	trialSeed := spec.Seed ^ (uint64(sug.ID)+1)*0x9e3779b97f4a7c15
	result, err := r.Trainer.Run(spec.Workload, h, sys, trialSeed, obs)
	if err != nil {
		return TrialRecord{}, fmt.Errorf("tune: trial %d: %w", sug.ID, err)
	}
	return TrialRecord{
		ID:         sug.ID,
		Assignment: sug.Assignment.Clone(),
		Hyper:      h,
		StartSys:   sys,
		BudgetFrac: sug.BudgetFrac,
		Result:     result,
		Score:      spec.Objective.Score(result),
	}, nil
}

// legacyRunBatch is the pre-refactor Runner.runBatch, verbatim: the
// bounded in-process goroutine pool.
func legacyRunBatch(r *Runner, ctx context.Context, spec JobSpec, batch []search.Suggestion, workers int) ([]TrialRecord, error) {
	records := make([]TrialRecord, len(batch))
	errs := make([]error, len(batch))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, sug := range batch {
		i, sug := i, sug
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if err := ctx.Err(); err != nil {
				errs[i] = fmt.Errorf("tune: job cancelled: %w", err)
				return
			}
			records[i], errs[i] = legacyRunTrial(r, spec, sug)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return records, err
		}
	}
	return records, nil
}

// legacyRunJob is the pre-refactor RunJobCtx event loop wired to
// legacyRunBatch — the complete pre-exec execution path.
func legacyRunJob(r *Runner, spec JobSpec) (*JobResult, error) {
	ctx := context.Background()
	searcher, slots, workers, err := r.prepare(spec)
	if err != nil {
		return nil, err
	}
	eng := sched.New(r.Cluster.SchedPool(), r.policyFor(spec), slots)
	res := &JobResult{Spec: spec}
	outstanding := 0
	bestAcc := 0.0
	var loopErr error

	var submit func(batch []search.Suggestion)
	complete := func(rec *TrialRecord) {
		res.Trials = append(res.Trials, *rec)
		res.TotalEnergy += rec.Result.EnergyJ
		searcher.Observe([]search.Report{{ID: rec.ID, Score: rec.Score}})
		if spec.OnTrialDone != nil {
			spec.OnTrialDone(rec.ID, rec.Result)
		}
		if res.Best == nil || rec.Score > res.Best.Score ||
			(rec.Score == res.Best.Score && rec.ID < res.Best.ID) {
			cp := *rec
			res.Best = &cp
		}
		if rec.Result.Accuracy > bestAcc {
			bestAcc = rec.Result.Accuracy
		}
		res.Progress = append(res.Progress, ProgressPoint{
			Time:          rec.End,
			BestAccuracy:  bestAcc,
			TrialDuration: rec.Result.Duration,
		})
		outstanding--
		if outstanding == 0 && loopErr == nil {
			if next := searcher.Next(); len(next) > 0 {
				submit(next)
			}
		}
	}
	submit = func(batch []search.Suggestion) {
		records, err := legacyRunBatch(r, ctx, spec, batch, workers)
		if err != nil {
			loopErr = err
			eng.Halt()
			return
		}
		outstanding += len(records)
		for i := range records {
			rec := &records[i]
			task := sched.Task{
				ID:       rec.ID,
				Arrival:  eng.Now(),
				Sys:      rec.StartSys,
				Duration: rec.Result.Duration,
				Resizes:  resizeEvents(rec.Result),
			}
			err := eng.Submit(task, func(_ sched.Task, st sched.TaskStats) {
				rec.Start, rec.End = st.Start, st.End
				rec.Resizes, rec.ResizesDenied = st.ResizesGranted, st.ResizesDenied
				complete(rec)
			})
			if err != nil {
				loopErr = fmt.Errorf("tune: trial %d: %w", rec.ID, err)
				eng.Halt()
				return
			}
		}
	}

	first := searcher.Next()
	if len(first) == 0 {
		return nil, errors.New("tune: searcher proposed no trials")
	}
	submit(first)
	if loopErr != nil {
		return nil, loopErr
	}
	if err := eng.Run(); err != nil && loopErr == nil {
		return nil, fmt.Errorf("tune: %w", err)
	}
	if loopErr != nil {
		return nil, loopErr
	}
	if res.Best == nil {
		return nil, errors.New("tune: searcher proposed no trials")
	}
	res.TuningTime = eng.Now()
	return res, nil
}

// parityRunner builds a fast runner over the paper cluster.
func parityRunner() *Runner {
	tr := trainer.NewRunner()
	tr.Data = dataset.Config{TrainSize: 96, TestSize: 48}
	return NewRunner(tr, cluster.Paper())
}

// paritySpec is the standard catalog job, small enough to sweep.
func paritySpec(w workload.Workload, mode Mode, seed uint64) JobSpec {
	h := params.DefaultHyper()
	h.Epochs = 3
	obj := MaximizeAccuracy
	if mode == ModeV2 {
		obj = MaximizeAccuracyPerTime
	}
	return JobSpec{
		Workload:  w,
		Mode:      mode,
		Objective: obj,
		HyperSpace: params.Space{
			{Name: params.KeyBatchSize, Values: []float64{32, 256, 1024}},
			{Name: params.KeyLearningRate, Values: []float64{0.005, 0.05}},
		},
		SystemSpace: params.Space{
			{Name: params.KeyCores, Values: []float64{4, 16}},
			{Name: params.KeyMemoryGB, Values: []float64{8, 32}},
		},
		BaseHyper: h,
		BaseSys:   params.DefaultSysConfig(),
		Seed:      seed,
	}
}

// mustJSON renders a JobResult for byte comparison.
func mustJSON(t *testing.T, res *JobResult) string {
	t.Helper()
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// probeObserver is a stateful per-trial epoch observer standing in for
// PipeTune's controller: epoch 1 switches to the probe config, epoch 2
// settles back. It exercises the TrialObserver plumbing (and the resize
// events it produces) without importing internal/core.
type probeObserver struct {
	mu     sync.Mutex
	epochs map[int]int
}

func (p *probeObserver) observerFor(trialID int) trainer.EpochObserver {
	return trainer.ObserverFunc(func(_ uint64, _ workload.Workload, _ params.Hyper, s trainer.EpochStats) *params.SysConfig {
		p.mu.Lock()
		p.epochs[trialID]++
		n := p.epochs[trialID]
		p.mu.Unlock()
		switch n {
		case 1:
			return &params.SysConfig{Cores: 16, MemoryGB: 32}
		case 2:
			return &params.SysConfig{Cores: 8, MemoryGB: 8}
		default:
			return nil
		}
	})
}

// TestLocalBackendParityCatalog sweeps the Table 3 catalog under the
// default FIFO policy: the exec.Local path must reproduce the
// pre-refactor inline pool bit for bit.
func TestLocalBackendParityCatalog(t *testing.T) {
	catalog := workload.Catalog()
	if testing.Short() {
		catalog = catalog[:2]
	}
	for _, w := range catalog {
		w := w
		t.Run(w.Name(), func(t *testing.T) {
			spec := paritySpec(w, ModeV1, 42)
			want, err := legacyRunJob(parityRunner(), spec)
			if err != nil {
				t.Fatal(err)
			}
			got, err := parityRunner().RunJob(spec)
			if err != nil {
				t.Fatal(err)
			}
			if mustJSON(t, got) != mustJSON(t, want) {
				t.Fatalf("%s: exec.Local JobResult diverges from the pre-refactor path", w.Name())
			}
		})
	}
}

// TestLocalBackendParityPoliciesAndModes spot-checks the non-default
// axes: ModeV2 (system space folded in), SJF and backfill placement, and
// the TrialObserver path (mid-trial system switches driving scheduler
// resizes).
func TestLocalBackendParityPoliciesAndModes(t *testing.T) {
	w := workload.Workload{Model: workload.LeNet5, Dataset: workload.MNIST}

	cases := []struct {
		name string
		spec func() JobSpec
	}{
		{"v2-fifo", func() JobSpec { return paritySpec(w, ModeV2, 7) }},
		{"v1-sjf", func() JobSpec {
			s := paritySpec(w, ModeV1, 7)
			s.Policy = sched.SJF()
			return s
		}},
		{"v1-backfill", func() JobSpec {
			s := paritySpec(w, ModeV1, 7)
			s.Policy = sched.Backfill()
			return s
		}},
		{"v1-observed", func() JobSpec {
			s := paritySpec(w, ModeV1, 7)
			obs := &probeObserver{epochs: make(map[int]int)}
			s.TrialObserver = obs.observerFor
			return s
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want, err := legacyRunJob(parityRunner(), tc.spec())
			if err != nil {
				t.Fatal(err)
			}
			got, err := parityRunner().RunJob(tc.spec())
			if err != nil {
				t.Fatal(err)
			}
			if mustJSON(t, got) != mustJSON(t, want) {
				t.Fatalf("%s: exec.Local JobResult diverges from the pre-refactor path", tc.name)
			}
		})
	}
}

// TestExplicitLocalBackendIsDefault pins that a Runner with Exec unset
// and one with an explicit exec.NewLocal produce identical results —
// the nil default is not a third code path.
func TestExplicitLocalBackendIsDefault(t *testing.T) {
	w := workload.Workload{Model: workload.CNN, Dataset: workload.News20}
	spec := paritySpec(w, ModeV1, 11)
	implicit, err := parityRunner().RunJob(spec)
	if err != nil {
		t.Fatal(err)
	}
	r := parityRunner()
	r.Exec = exec.NewLocal(r.Trainer)
	explicit, err := r.RunJob(spec)
	if err != nil {
		t.Fatal(err)
	}
	if mustJSON(t, implicit) != mustJSON(t, explicit) {
		t.Fatal("explicit exec.Local diverges from the nil default")
	}
}

// TestParityProgressOrdering sanity-checks the reference itself: the
// progress curve must be sorted by simulated completion time in both
// paths (a scrambled reference would make the byte comparison
// meaningless).
func TestParityProgressOrdering(t *testing.T) {
	spec := paritySpec(workload.Workload{Model: workload.LeNet5, Dataset: workload.MNIST}, ModeV1, 42)
	res, err := parityRunner().RunJob(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !sort.SliceIsSorted(res.Progress, func(i, j int) bool {
		return res.Progress[i].Time < res.Progress[j].Time
	}) {
		t.Fatal("progress curve not in completion-time order")
	}
}
