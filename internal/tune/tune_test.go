package tune

import (
	"testing"

	"pipetune/internal/cluster"
	"pipetune/internal/dataset"
	"pipetune/internal/params"
	"pipetune/internal/search"
	"pipetune/internal/trainer"
	"pipetune/internal/workload"
	"pipetune/internal/xrand"
)

var lenetMNIST = workload.Workload{Model: workload.LeNet5, Dataset: workload.MNIST}

// smallSpace keeps test jobs fast: 2 dimensions, 4 points.
func smallSpace() params.Space {
	return params.Space{
		{Name: params.KeyBatchSize, Values: []float64{32, 256}},
		{Name: params.KeyLearningRate, Values: []float64{0.01, 0.05}},
	}
}

func testRunner() *Runner {
	tr := trainer.NewRunner()
	tr.Data = dataset.Config{TrainSize: 256, TestSize: 96}
	return NewRunner(tr, cluster.Paper())
}

func baseSpec(mode Mode, obj Objective) JobSpec {
	h := params.DefaultHyper()
	h.Epochs = 2
	return JobSpec{
		Workload:    lenetMNIST,
		Mode:        mode,
		Objective:   obj,
		HyperSpace:  smallSpace(),
		SystemSpace: params.Space{{Name: params.KeyCores, Values: []float64{4, 8}}},
		BaseHyper:   h,
		BaseSys:     params.DefaultSysConfig(),
		Seed:        42,
		Searcher: func(space params.Space, r *xrand.Source) (search.Searcher, error) {
			return search.NewGrid(space, 0, 0)
		},
	}
}

func TestRunJobV1GridCoversSpace(t *testing.T) {
	r := testRunner()
	spec := baseSpec(ModeV1, MaximizeAccuracy)
	res, err := r.RunJob(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trials) != 4 {
		t.Fatalf("ran %d trials, want 4", len(res.Trials))
	}
	if res.Best == nil || res.Best.Result == nil {
		t.Fatal("no best trial")
	}
	// V1 fixes the system configuration.
	for _, rec := range res.Trials {
		if rec.StartSys != spec.BaseSys {
			t.Fatalf("V1 trial ran at %v, want base %v", rec.StartSys, spec.BaseSys)
		}
	}
	if res.TuningTime <= 0 {
		t.Fatal("no tuning time")
	}
	if res.TotalEnergy <= 0 {
		t.Fatal("no energy")
	}
}

func TestRunJobV2VariesSystem(t *testing.T) {
	r := testRunner()
	spec := baseSpec(ModeV2, MaximizeAccuracyPerTime)
	res, err := r.RunJob(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trials) != 8 { // 4 hyper points x 2 core values
		t.Fatalf("ran %d trials, want 8", len(res.Trials))
	}
	seenCores := make(map[int]bool)
	for _, rec := range res.Trials {
		seenCores[rec.StartSys.Cores] = true
	}
	if !seenCores[4] || !seenCores[8] {
		t.Fatalf("V2 did not vary cores: %v", seenCores)
	}
}

func TestBestMaximisesObjective(t *testing.T) {
	r := testRunner()
	res, err := r.RunJob(baseSpec(ModeV1, MaximizeAccuracy))
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range res.Trials {
		if rec.Score > res.Best.Score {
			t.Fatalf("trial %d score %v beats best %v", rec.ID, rec.Score, res.Best.Score)
		}
	}
}

func TestObjectiveScores(t *testing.T) {
	fast := &trainer.Result{Accuracy: 0.8, Duration: 100}
	slow := &trainer.Result{Accuracy: 0.9, Duration: 10000}
	if MaximizeAccuracy.Score(slow) <= MaximizeAccuracy.Score(fast) {
		t.Fatal("accuracy objective must prefer higher accuracy")
	}
	if MaximizeAccuracyPerTime.Score(fast) <= MaximizeAccuracyPerTime.Score(slow) {
		t.Fatal("accuracy/time objective must prefer the much faster trial")
	}
	if MaximizeAccuracyPerTime.Score(&trainer.Result{Accuracy: 1, Duration: 0}) != 0 {
		t.Fatal("zero duration must score 0, not Inf")
	}
}

func TestProgressCurveMonotone(t *testing.T) {
	r := testRunner()
	res, err := r.RunJob(baseSpec(ModeV1, MaximizeAccuracy))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Progress) != len(res.Trials) {
		t.Fatalf("progress has %d points, want %d", len(res.Progress), len(res.Trials))
	}
	for i := 1; i < len(res.Progress); i++ {
		if res.Progress[i].Time < res.Progress[i-1].Time {
			t.Fatal("progress times not sorted")
		}
		if res.Progress[i].BestAccuracy < res.Progress[i-1].BestAccuracy {
			t.Fatal("best-accuracy curve decreased")
		}
	}
}

func TestMakespanRespectsParallelism(t *testing.T) {
	r := testRunner()
	serial := baseSpec(ModeV1, MaximizeAccuracy)
	serial.MaxParallel = 1
	sres, err := r.RunJob(serial)
	if err != nil {
		t.Fatal(err)
	}
	parallel := baseSpec(ModeV1, MaximizeAccuracy)
	parallel.MaxParallel = 4
	pres, err := r.RunJob(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if pres.TuningTime >= sres.TuningTime {
		t.Fatalf("parallel tuning %v not faster than serial %v", pres.TuningTime, sres.TuningTime)
	}
	// Serial makespan must equal the sum of trial durations.
	sum := 0.0
	for _, rec := range sres.Trials {
		sum += rec.Result.Duration
	}
	if diff := sres.TuningTime - sum; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("serial makespan %v != trial-duration sum %v", sres.TuningTime, sum)
	}
}

func TestTrialObserverHookInvoked(t *testing.T) {
	r := testRunner()
	spec := baseSpec(ModeV1, MaximizeAccuracy)
	target := params.SysConfig{Cores: 16, MemoryGB: 32}
	spec.TrialObserver = func(trialID int) trainer.EpochObserver {
		return trainer.ObserverFunc(func(_ uint64, _ workload.Workload, _ params.Hyper, s trainer.EpochStats) *params.SysConfig {
			if s.Epoch == 1 {
				cfg := target
				return &cfg
			}
			return nil
		})
	}
	res, err := r.RunJob(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range res.Trials {
		if rec.Result.FinalSys != target {
			t.Fatalf("observer did not retune trial %d: %v", rec.ID, rec.Result.FinalSys)
		}
	}
}

func TestOnTrialDoneCompletionOrder(t *testing.T) {
	r := testRunner()
	spec := baseSpec(ModeV1, MaximizeAccuracy)
	var ids []int
	spec.OnTrialDone = func(trialID int, _ *trainer.Result) {
		ids = append(ids, trialID)
	}
	res, err := r.RunJob(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 4 {
		t.Fatalf("OnTrialDone called %d times, want 4", len(ids))
	}
	// The hook fires per trial in simulated completion order — the same
	// order the trials appear in res.Trials.
	seen := make(map[int]int)
	for i, rec := range res.Trials {
		if ids[i] != rec.ID {
			t.Fatalf("OnTrialDone order %v diverges from completion order at %d", ids, i)
		}
		seen[rec.ID]++
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("trial %d reported %d times", id, n)
		}
	}
	for i := 1; i < len(res.Trials); i++ {
		if res.Trials[i].End < res.Trials[i-1].End {
			t.Fatalf("res.Trials not in completion order: %v after %v",
				res.Trials[i].End, res.Trials[i-1].End)
		}
	}
}

func TestRunJobDeterministic(t *testing.T) {
	run := func() *JobResult {
		res, err := testRunner().RunJob(baseSpec(ModeV1, MaximizeAccuracy))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.TuningTime != b.TuningTime || a.Best.Score != b.Best.Score || a.TotalEnergy != b.TotalEnergy {
		t.Fatalf("same seed diverged: %v/%v vs %v/%v", a.TuningTime, a.Best.Score, b.TuningTime, b.Best.Score)
	}
}

func TestHyperBandBudgetScalesEpochs(t *testing.T) {
	r := testRunner()
	spec := baseSpec(ModeV1, MaximizeAccuracy)
	spec.BaseHyper.Epochs = 9
	spec.Searcher = func(space params.Space, rng *xrand.Source) (search.Searcher, error) {
		return search.NewHyperBand(space, 9, 3, rng)
	}
	res, err := r.RunJob(spec)
	if err != nil {
		t.Fatal(err)
	}
	sawShort, sawFull := false, false
	for _, rec := range res.Trials {
		epochs := len(rec.Result.Epochs) - 1 // minus init
		if rec.BudgetFrac < 1 && epochs < 9 {
			sawShort = true
		}
		if rec.BudgetFrac == 1 && epochs == 9 {
			sawFull = true
		}
	}
	if !sawShort || !sawFull {
		t.Fatalf("hyperband budgets not applied: short=%v full=%v", sawShort, sawFull)
	}
}

func TestValidationErrors(t *testing.T) {
	r := testRunner()
	bad := baseSpec(Mode(0), MaximizeAccuracy)
	if _, err := r.RunJob(bad); err == nil {
		t.Fatal("invalid mode accepted")
	}
	bad = baseSpec(ModeV1, Objective(0))
	if _, err := r.RunJob(bad); err == nil {
		t.Fatal("invalid objective accepted")
	}
	bad = baseSpec(ModeV1, MaximizeAccuracy)
	bad.BaseSys = params.SysConfig{Cores: 64, MemoryGB: 256}
	if _, err := r.RunJob(bad); err == nil {
		t.Fatal("unfittable base config accepted")
	}
	bad = baseSpec(ModeV1, MaximizeAccuracy)
	bad.BaseHyper.BatchSize = 0
	if _, err := r.RunJob(bad); err == nil {
		t.Fatal("invalid base hyper accepted")
	}
	empty := baseSpec(ModeV1, MaximizeAccuracy)
	empty.HyperSpace = params.Space{{Name: "x", Values: nil}}
	if _, err := r.RunJob(empty); err == nil {
		t.Fatal("invalid space accepted")
	}
}

func TestV2RejectsUnfittableTrialConfig(t *testing.T) {
	r := NewRunner(testRunner().Trainer, cluster.SingleNode()) // 8 cores max
	spec := baseSpec(ModeV2, MaximizeAccuracyPerTime)
	spec.SystemSpace = params.Space{{Name: params.KeyCores, Values: []float64{16}}}
	spec.BaseSys = params.SysConfig{Cores: 4, MemoryGB: 8}
	if _, err := r.RunJob(spec); err == nil {
		t.Fatal("16-core trial on an 8-core node accepted")
	}
}
