package tune

// Tests for the event-driven scheduler refactor: parity with the legacy
// barrier scheduler under FIFO, determinism, alternative placement
// policies, and the monotone-progress regression.

import (
	"testing"

	"pipetune/internal/params"
	"pipetune/internal/sched"
	"pipetune/internal/search"
	"pipetune/internal/trainer"
	"pipetune/internal/workload"
	"pipetune/internal/xrand"
)

// hyperbandSpec is baseSpec with the evaluation's default searcher.
func hyperbandSpec() JobSpec {
	spec := baseSpec(ModeV1, MaximizeAccuracy)
	spec.Searcher = nil // default: HyperBand
	return spec
}

func TestEventSchedulerMatchesBarrierFIFO(t *testing.T) {
	for _, mk := range []struct {
		name string
		spec JobSpec
	}{
		{"grid-v1", baseSpec(ModeV1, MaximizeAccuracy)},
		{"grid-v2", baseSpec(ModeV2, MaximizeAccuracyPerTime)},
		{"hyperband-v1", hyperbandSpec()},
	} {
		t.Run(mk.name, func(t *testing.T) {
			r := testRunner()
			event, err := r.RunJob(mk.spec)
			if err != nil {
				t.Fatal(err)
			}
			barrier, err := r.RunJobBarrier(mk.spec)
			if err != nil {
				t.Fatal(err)
			}
			if event.TuningTime != barrier.TuningTime {
				t.Fatalf("FIFO event TuningTime %v != barrier %v", event.TuningTime, barrier.TuningTime)
			}
			if event.Best.ID != barrier.Best.ID || event.Best.Score != barrier.Best.Score {
				t.Fatalf("best diverged: event %d/%v vs barrier %d/%v",
					event.Best.ID, event.Best.Score, barrier.Best.ID, barrier.Best.Score)
			}
			if len(event.Trials) != len(barrier.Trials) {
				t.Fatalf("trial counts diverged: %d vs %d", len(event.Trials), len(barrier.Trials))
			}
			// Energy is summed in completion order rather than batch order,
			// so only float rounding may differ.
			if diff := event.TotalEnergy - barrier.TotalEnergy; diff > 1e-6 || diff < -1e-6 {
				t.Fatalf("energy diverged: %v vs %v", event.TotalEnergy, barrier.TotalEnergy)
			}
		})
	}
}

func TestEventSchedulerDeterministic(t *testing.T) {
	for _, policy := range []sched.Policy{sched.FIFO(), sched.SJF(), sched.Backfill()} {
		run := func() *JobResult {
			r := testRunner()
			spec := hyperbandSpec()
			spec.Policy = policy
			res, err := r.RunJob(spec)
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		a, b := run(), run()
		if a.TuningTime != b.TuningTime || a.Best.ID != b.Best.ID || a.Best.Score != b.Best.Score {
			t.Fatalf("%s: same seed diverged: %v/%d vs %v/%d",
				policy.Name(), a.TuningTime, a.Best.ID, b.TuningTime, b.Best.ID)
		}
		for i := range a.Trials {
			if a.Trials[i].ID != b.Trials[i].ID || a.Trials[i].Start != b.Trials[i].Start {
				t.Fatalf("%s: trial schedule diverged at %d", policy.Name(), i)
			}
		}
	}
}

func TestEventSchedulerProgressMonotone(t *testing.T) {
	// Regression for the async refactor: the progress curve must be
	// monotone in both time and best accuracy without any post-hoc sort —
	// completions arrive in simulated time order.
	r := testRunner()
	res, err := r.RunJob(hyperbandSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Progress) != len(res.Trials) {
		t.Fatalf("progress has %d points, want %d", len(res.Progress), len(res.Trials))
	}
	for i := 1; i < len(res.Progress); i++ {
		if res.Progress[i].Time < res.Progress[i-1].Time {
			t.Fatalf("progress time decreased at %d: %v < %v",
				i, res.Progress[i].Time, res.Progress[i-1].Time)
		}
		if res.Progress[i].BestAccuracy < res.Progress[i-1].BestAccuracy {
			t.Fatalf("best-accuracy curve decreased at %d", i)
		}
	}
	if res.TuningTime != res.Progress[len(res.Progress)-1].Time {
		t.Fatalf("TuningTime %v != last completion %v",
			res.TuningTime, res.Progress[len(res.Progress)-1].Time)
	}
}

func TestEventSchedulerObservesIncrementally(t *testing.T) {
	// The searcher must receive exactly one report per completed trial, in
	// completion order — not one batched Observe per rung.
	r := testRunner()
	spec := baseSpec(ModeV1, MaximizeAccuracy)
	var calls [][]search.Report
	spec.Searcher = func(space params.Space, rng *xrand.Source) (search.Searcher, error) {
		g, err := search.NewGrid(space, 0, 0)
		if err != nil {
			return nil, err
		}
		return &observeSpy{Searcher: g, calls: &calls}, nil
	}
	res, err := r.RunJob(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != len(res.Trials) {
		t.Fatalf("Observe called %d times, want once per trial (%d)", len(calls), len(res.Trials))
	}
	for i, reports := range calls {
		if len(reports) != 1 {
			t.Fatalf("Observe call %d carried %d reports, want 1", i, len(reports))
		}
		if reports[0].ID != res.Trials[i].ID {
			t.Fatalf("Observe call %d reported trial %d, completion order says %d",
				i, reports[0].ID, res.Trials[i].ID)
		}
	}
}

// observeSpy records every Observe call made by the runner.
type observeSpy struct {
	search.Searcher
	calls *[][]search.Report
}

func (s *observeSpy) Observe(reports []search.Report) {
	cp := make([]search.Report, len(reports))
	copy(cp, reports)
	*s.calls = append(*s.calls, cp)
	s.Searcher.Observe(reports)
}

func TestPolicyPrecedence(t *testing.T) {
	r := testRunner()
	if got := r.policyFor(JobSpec{}); got.Name() != sched.NameFIFO {
		t.Fatalf("default policy %s, want fifo", got.Name())
	}
	r.Policy = sched.SJF()
	if got := r.policyFor(JobSpec{}); got.Name() != sched.NameSJF {
		t.Fatalf("runner policy not honoured: %s", got.Name())
	}
	if got := r.policyFor(JobSpec{Policy: sched.Backfill()}); got.Name() != sched.NameBackfill {
		t.Fatalf("spec policy not honoured: %s", got.Name())
	}
}

func TestResizeEventsFromEpochLog(t *testing.T) {
	// A PipeTune-style trial that probes two configurations and settles
	// must yield one resize event per configuration switch.
	r := testRunner()
	spec := baseSpec(ModeV1, MaximizeAccuracy)
	spec.BaseHyper.Epochs = 3
	probe := params.SysConfig{Cores: 16, MemoryGB: 16}
	settle := params.SysConfig{Cores: 4, MemoryGB: 8}
	spec.TrialObserver = func(trialID int) trainer.EpochObserver {
		return trainer.ObserverFunc(func(_ uint64, _ workload.Workload, _ params.Hyper, s trainer.EpochStats) *params.SysConfig {
			switch s.Epoch {
			case 1:
				cfg := probe
				return &cfg
			case 2:
				cfg := settle
				return &cfg
			}
			return nil
		})
	}
	res, err := r.RunJob(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range res.Trials {
		events := resizeEvents(rec.Result)
		if len(events) != 2 {
			t.Fatalf("trial %d: %d resize events, want 2", rec.ID, len(events))
		}
		if events[0].Sys != probe || events[1].Sys != settle {
			t.Fatalf("trial %d: resize targets %v, want [%v %v]", rec.ID, events, probe, settle)
		}
		if !(0 < events[0].Offset && events[0].Offset < events[1].Offset) {
			t.Fatalf("trial %d: offsets not increasing: %v", rec.ID, events)
		}
		if rec.Resizes+rec.ResizesDenied != 2 {
			t.Fatalf("trial %d: scheduler saw %d+%d resizes, want 2",
				rec.ID, rec.Resizes, rec.ResizesDenied)
		}
	}
}
