package tune

import (
	"context"
	"errors"
	"testing"

	"pipetune/internal/cluster"
	"pipetune/internal/dataset"
	"pipetune/internal/params"
	"pipetune/internal/trainer"
	"pipetune/internal/workload"
)

// ctxRunner builds a small runner for cancellation tests.
func ctxRunner() *Runner {
	tr := trainer.NewRunner()
	tr.Data = dataset.Config{TrainSize: 128, TestSize: 64}
	return NewRunner(tr, cluster.Paper())
}

// ctxSpec is a minimal valid V1 spec.
func ctxSpec() JobSpec {
	h := params.DefaultHyper()
	h.Epochs = 3
	return JobSpec{
		Workload:   workload.Workload{Model: workload.LeNet5, Dataset: workload.MNIST},
		Mode:       ModeV1,
		Objective:  MaximizeAccuracy,
		HyperSpace: params.PaperHyperSpace(),
		BaseHyper:  h,
		BaseSys:    params.DefaultSysConfig(),
		Seed:       11,
	}
}

// TestRunJobCtxPreCancelled verifies an already-cancelled context aborts
// before any trial runs, surfacing context.Canceled.
func TestRunJobCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := ctxRunner().RunJobCtx(ctx, ctxSpec())
	if res != nil {
		t.Fatal("cancelled job returned a result")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunJobCtxCancelMidRun cancels from the first trial-completion hook:
// the event loop must stop at the next batch boundary instead of running
// the remaining HyperBand rungs, and the error must be context.Canceled.
func TestRunJobCtxCancelMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	spec := ctxSpec()
	done := 0
	spec.OnTrialDone = func(int, *trainer.Result) {
		done++
		cancel() // deterministic mid-run cancellation point
	}
	r := ctxRunner()
	res, err := r.RunJobCtx(ctx, spec)
	if res != nil {
		t.Fatal("cancelled job returned a result")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if done == 0 {
		t.Fatal("cancellation hook never fired")
	}
	// The same spec on a background context still completes — the runner
	// carries no residual state from the aborted job.
	spec.OnTrialDone = nil
	full, err := r.RunJob(spec)
	if err != nil {
		t.Fatal(err)
	}
	if done >= len(full.Trials) {
		t.Errorf("cancelled job observed %d trials, full job only %d — cancel did not cut the run short",
			done, len(full.Trials))
	}
}

// TestRunJobCtxBackgroundMatchesRunJob pins the refactor invariant: RunJob
// and RunJobCtx(Background) produce identical results.
func TestRunJobCtxBackgroundMatchesRunJob(t *testing.T) {
	a, err := ctxRunner().RunJob(ctxSpec())
	if err != nil {
		t.Fatal(err)
	}
	b, err := ctxRunner().RunJobCtx(context.Background(), ctxSpec())
	if err != nil {
		t.Fatal(err)
	}
	if a.TuningTime != b.TuningTime || a.Best.ID != b.Best.ID || a.Best.Score != b.Best.Score {
		t.Fatalf("RunJobCtx(Background) diverged: (%v, %d, %v) vs (%v, %d, %v)",
			a.TuningTime, a.Best.ID, a.Best.Score, b.TuningTime, b.Best.ID, b.Best.Score)
	}
}
