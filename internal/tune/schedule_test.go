package tune

import (
	"testing"

	"pipetune/internal/cluster"
	"pipetune/internal/params"
	"pipetune/internal/trainer"
	"pipetune/internal/workload"
)

// mkRecord fabricates a finished trial with the given footprint/duration.
func mkRecord(id int, sys params.SysConfig, duration float64) TrialRecord {
	return TrialRecord{
		ID:       id,
		StartSys: sys,
		Result: &trainer.Result{
			Workload: workload.Workload{Model: workload.LeNet5, Dataset: workload.MNIST},
			Duration: duration,
		},
	}
}

func schedRunner(t *testing.T, nodes, cores, mem int) *Runner {
	t.Helper()
	c, err := cluster.New(nodes, cluster.NodeSpec{Cores: cores, MemoryGB: mem})
	if err != nil {
		t.Fatal(err)
	}
	return NewRunner(trainer.NewRunner(), c)
}

func TestScheduleBatchFullyParallelWhenFits(t *testing.T) {
	r := schedRunner(t, 2, 16, 32)
	records := []TrialRecord{
		mkRecord(0, params.SysConfig{Cores: 8, MemoryGB: 8}, 100),
		mkRecord(1, params.SysConfig{Cores: 8, MemoryGB: 8}, 100),
		mkRecord(2, params.SysConfig{Cores: 8, MemoryGB: 8}, 100),
		mkRecord(3, params.SysConfig{Cores: 8, MemoryGB: 8}, 100),
	}
	end, err := r.scheduleBatch(records, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if end != 100 {
		t.Fatalf("4 trials on 2x(16c/32GB) should run fully parallel: makespan %v, want 100", end)
	}
	for _, rec := range records {
		if rec.Start != 0 {
			t.Fatalf("trial %d delayed to %v", rec.ID, rec.Start)
		}
	}
}

func TestScheduleBatchOversizedTrialsSerialise(t *testing.T) {
	// One node, 16 cores: two 16-core trials must run back to back even
	// though slot count would allow both.
	r := schedRunner(t, 1, 16, 32)
	records := []TrialRecord{
		mkRecord(0, params.SysConfig{Cores: 16, MemoryGB: 16}, 100),
		mkRecord(1, params.SysConfig{Cores: 16, MemoryGB: 16}, 100),
	}
	end, err := r.scheduleBatch(records, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if end != 200 {
		t.Fatalf("two full-node trials makespan = %v, want 200", end)
	}
	if records[1].Start != 100 {
		t.Fatalf("second trial started at %v, want 100", records[1].Start)
	}
}

func TestScheduleBatchMixedFootprints(t *testing.T) {
	// A big trial and two small ones on one 16-core node: the big one
	// occupies the node; the small ones co-run after it.
	r := schedRunner(t, 1, 16, 32)
	records := []TrialRecord{
		mkRecord(0, params.SysConfig{Cores: 16, MemoryGB: 16}, 50),
		mkRecord(1, params.SysConfig{Cores: 8, MemoryGB: 8}, 60),
		mkRecord(2, params.SysConfig{Cores: 8, MemoryGB: 8}, 60),
	}
	end, err := r.scheduleBatch(records, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if records[1].Start != 50 || records[2].Start != 50 {
		t.Fatalf("small trials should start when the big one ends: %v, %v",
			records[1].Start, records[2].Start)
	}
	if end != 110 {
		t.Fatalf("makespan = %v, want 110", end)
	}
}

func TestScheduleBatchRespectsSlotCap(t *testing.T) {
	// Plenty of resources but only 1 slot: strictly serial.
	r := schedRunner(t, 4, 32, 64)
	records := []TrialRecord{
		mkRecord(0, params.SysConfig{Cores: 4, MemoryGB: 4}, 10),
		mkRecord(1, params.SysConfig{Cores: 4, MemoryGB: 4}, 10),
		mkRecord(2, params.SysConfig{Cores: 4, MemoryGB: 4}, 10),
	}
	end, err := r.scheduleBatch(records, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if end != 30 {
		t.Fatalf("single-slot makespan = %v, want 30", end)
	}
}

func TestScheduleBatchStartsFromClock(t *testing.T) {
	r := schedRunner(t, 1, 16, 32)
	records := []TrialRecord{mkRecord(0, params.SysConfig{Cores: 8, MemoryGB: 8}, 10)}
	end, err := r.scheduleBatch(records, 500, 4)
	if err != nil {
		t.Fatal(err)
	}
	if records[0].Start != 500 || end != 510 {
		t.Fatalf("batch did not start at the job clock: start %v end %v", records[0].Start, end)
	}
}

func TestScheduleBatchUnfittableConfig(t *testing.T) {
	r := schedRunner(t, 1, 8, 16)
	records := []TrialRecord{mkRecord(0, params.SysConfig{Cores: 16, MemoryGB: 8}, 10)}
	if _, err := r.scheduleBatch(records, 0, 4); err == nil {
		t.Fatal("unfittable trial accepted")
	}
}
