package tune

import (
	"encoding/json"
	"testing"
)

// TestJobResultClone verifies Clone is a genuinely deep copy (mutating
// the clone never reaches the original) and that it is JSON-faithful:
// the clone serialises bit-identically, including nil-versus-empty
// distinctions the wire format exposes.
func TestJobResultClone(t *testing.T) {
	r := testRunner()
	res, err := r.RunJob(baseSpec(ModeV1, MaximizeAccuracy))
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil || len(res.Trials) == 0 {
		t.Fatal("degenerate job result")
	}

	orig, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	cp := res.Clone()
	cloned, err := json.Marshal(cp)
	if err != nil {
		t.Fatal(err)
	}
	if string(orig) != string(cloned) {
		t.Fatal("clone does not serialise identically to the original")
	}

	// Vandalise every mutable reach of the clone.
	cp.Best.Score = -1
	cp.Trials[0].Score = -1
	for k := range cp.Trials[0].Assignment {
		cp.Trials[0].Assignment[k] = -1
	}
	if cp.Trials[0].Result != nil && len(cp.Trials[0].Result.Epochs) > 0 {
		cp.Trials[0].Result.Epochs[0].Accuracy = -1
	}
	if len(cp.Progress) > 0 {
		cp.Progress[0].BestAccuracy = -1
	}
	after, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	if string(after) != string(orig) {
		t.Fatal("mutating the clone reached the original: copy not deep")
	}

	// Nil results clone to nil.
	if (*JobResult)(nil).Clone() != nil {
		t.Fatal("nil clone not nil")
	}
}
