// Package tune is the hyperparameter-tuning library substrate (the paper
// builds on Ray Tune, §6): it runs HPT jobs — collections of training
// trials proposed by a search algorithm — against the trainer, under a
// user-chosen objective function.
//
// Two baseline modes reproduce §4 and §7.1.5:
//
//   - V1: hyperparameters only, objective = maximise accuracy; every trial
//     runs with the same default system configuration.
//   - V2: "system as hyperparameters" — the system space is concatenated
//     into the search space and the objective becomes accuracy/duration.
//
// PipeTune plugs in through two extension points: a per-trial
// trainer.EpochObserver factory (system tuning inside the trial) and a
// trial-completion hook (feeding the ground-truth database).
//
// Job execution is event-driven: trials flow through the internal/sched
// discrete-event scheduler, each admitted the moment its system footprint
// fits the cluster (under the configured placement policy) and reported to
// the searcher the instant it completes — there is no batch barrier. Trials
// whose epoch log shows a mid-trial system reconfiguration (PipeTune's
// pipelined tuning) re-negotiate their cluster allocation at the matching
// simulated instant. The pre-refactor barrier scheduler survives as
// RunJobBarrier, the regression reference.
//
// Trial bodies execute through a pluggable exec.Backend — by default the
// local in-process pool, optionally a remote worker fleet — and all
// reported times are simulated seconds derived from the cost model, so
// results are deterministic regardless of goroutine interleaving and of
// which backend computed them.
package tune

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"pipetune/internal/cluster"
	"pipetune/internal/ec2"
	"pipetune/internal/exec"
	"pipetune/internal/params"
	"pipetune/internal/sched"
	"pipetune/internal/search"
	"pipetune/internal/trainer"
	"pipetune/internal/workload"
	"pipetune/internal/xrand"
)

// Objective is the score a job maximises.
type Objective int

// Objectives from §5.1: maximum accuracy, or maximum accuracy with minimum
// training time (expressed as the accuracy/duration ratio, §4).
const (
	MaximizeAccuracy Objective = iota + 1
	MaximizeAccuracyPerTime
)

// String implements fmt.Stringer.
func (o Objective) String() string {
	switch o {
	case MaximizeAccuracy:
		return "accuracy"
	case MaximizeAccuracyPerTime:
		return "accuracy/time"
	default:
		return fmt.Sprintf("objective(%d)", int(o))
	}
}

// Score evaluates a finished trial under the objective; higher is better.
func (o Objective) Score(res *trainer.Result) float64 {
	switch o {
	case MaximizeAccuracyPerTime:
		// Normalise by epoch count where known: HyperBand runs trials at
		// different budgets, and a one-epoch trial must not beat a full
		// trial merely by being short. The denominator is therefore the
		// per-epoch duration (in kiloseconds, keeping scores O(accuracy)).
		dur := res.Duration
		if n := len(res.Epochs) - 1; n > 0 {
			dur = res.Duration / float64(n)
		}
		if dur <= 0 {
			return 0
		}
		return res.Accuracy / (dur / 1000)
	default:
		return res.Accuracy
	}
}

// Mode selects the baseline behaviour.
type Mode int

// Modes.
const (
	ModeV1 Mode = iota + 1 // hyper only, fixed default system parameters
	ModeV2                 // hyper + system parameters in one search space
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeV1:
		return "tune-v1"
	case ModeV2:
		return "tune-v2"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// SearcherFactory builds the search algorithm for a job. The default
// factory builds HyperBand, the paper's choice.
type SearcherFactory func(space params.Space, r *xrand.Source) (search.Searcher, error)

// DefaultSearcher returns the HyperBand factory used throughout the
// evaluation (§6), with R=9 and eta=3.
func DefaultSearcher() SearcherFactory {
	return func(space params.Space, r *xrand.Source) (search.Searcher, error) {
		return search.NewHyperBand(space, 9, 3, r)
	}
}

// JobSpec describes one HPT job (Figure 6's "hyperparameter tuning input").
type JobSpec struct {
	Workload    workload.Workload
	Mode        Mode
	Objective   Objective
	HyperSpace  params.Space
	SystemSpace params.Space // consulted only in ModeV2
	BaseHyper   params.Hyper
	BaseSys     params.SysConfig
	Seed        uint64
	// MaxParallel bounds concurrent trials; 0 derives it from the cluster
	// capacity under BaseSys.
	MaxParallel int
	Searcher    SearcherFactory

	// Policy selects the trial placement policy (FIFO, SJF, backfill);
	// nil falls back to the Runner's policy, then to FIFO — the order the
	// paper's cluster uses and the one whose makespan exactly matches the
	// legacy barrier scheduler.
	Policy sched.Policy

	// TrialObserver, when set, supplies a per-trial epoch observer (this
	// is PipeTune's hook; nil for the baselines).
	TrialObserver func(trialID int) trainer.EpochObserver
	// TrialRestart, when set, is called when an execution backend must
	// re-run a trial body from scratch (a remote lease requeued after
	// worker eviction): it must discard the trial's observer-side state
	// so the replayed epochs are observed as a fresh first attempt.
	TrialRestart func(trialID int)
	// OnTrialDone, when set, is called as each trial completes, in
	// simulated completion order (PipeTune's ground-truth feeder). When a
	// job is cancelled, trials of the interrupted batch that had already
	// finished computing are still delivered — in suggestion order, since
	// no schedule exists for them — so their knowledge is not lost.
	//
	// The hook runs synchronously inside the scheduling event loop, so it
	// must stay cheap: a slow hook delays every waiting trial's dispatch.
	// PipeTune's feeder satisfies this because internal/gt stores make Add
	// an O(1) append — model refits are deferred behind the store's
	// revision watermark and paid by the next lookup, never here.
	OnTrialDone func(trialID int, res *trainer.Result)
}

// TrialRecord is one evaluated trial.
type TrialRecord struct {
	ID         int               `json:"id"`
	Assignment params.Assignment `json:"assignment"`
	Hyper      params.Hyper      `json:"hyper"`
	StartSys   params.SysConfig  `json:"startSys"`
	BudgetFrac float64           `json:"budgetFrac"`
	Result     *trainer.Result   `json:"result"`
	Score      float64           `json:"score"`
	// Start/End are simulated wall-clock seconds within the tuning job.
	Start float64 `json:"start"`
	End   float64 `json:"end"`
	// Resizes/ResizesDenied count the trial's mid-flight allocation
	// re-negotiations (granted and refused) — PipeTune's §5.6 dynamic
	// reconfiguration as seen by the scheduler. Always zero for baselines,
	// whose system configuration is fixed for the whole trial.
	Resizes       int `json:"resizes,omitempty"`
	ResizesDenied int `json:"resizesDenied,omitempty"`
	// Class names the node class the trial's final attempt ran on and Spot
	// marks it revocable; both are empty on legacy single-class clusters.
	Class string `json:"class,omitempty"`
	Spot  bool   `json:"spot,omitempty"`
	// Revocations counts the spot interruptions the trial survived;
	// SalvagedEpochs sums, over those interruptions, the epochs each
	// checkpoint resume skipped retraining (0 = every retry from scratch);
	// WastedSeconds is the simulated node-time the interrupted attempts
	// burned. CostUSD prices all attempts at the hosting classes' hourly
	// rates. All zero — and absent from JSON — on non-spot clusters.
	Revocations    int     `json:"revocations,omitempty"`
	SalvagedEpochs int     `json:"salvagedEpochs,omitempty"`
	WastedSeconds  float64 `json:"wastedSeconds,omitempty"`
	CostUSD        float64 `json:"costUSD,omitempty"`
}

// ProgressPoint supports the convergence plots (Figures 9 and 10): the
// state of the search when a trial completes.
type ProgressPoint struct {
	Time          float64 `json:"time"`          // simulated wall clock
	BestAccuracy  float64 `json:"bestAccuracy"`  // best accuracy so far
	TrialDuration float64 `json:"trialDuration"` // duration of the finishing trial
}

// JobResult is a finished HPT job (Figure 6's output: trained model +
// optimal parameters).
type JobResult struct {
	Spec        JobSpec         `json:"-"`
	Trials      []TrialRecord   `json:"trials"`
	Best        *TrialRecord    `json:"best"`
	TuningTime  float64         `json:"tuningTime"`  // simulated makespan
	TotalEnergy float64         `json:"totalEnergy"` // joules across all trials
	Progress    []ProgressPoint `json:"progress"`
}

// Clone deep-copies the record: the assignment map and trainer result are
// duplicated, so mutating the copy never reaches the original.
func (t TrialRecord) Clone() TrialRecord {
	if t.Assignment != nil { // preserve nil-ness for bit-identical JSON
		t.Assignment = t.Assignment.Clone()
	}
	t.Result = t.Result.Clone()
	return t
}

// Clone returns a deep copy of the result. Registries that retain results
// while handing them to API callers use it so no caller can mutate shared
// state (Spec is copied shallowly: it is configuration, excluded from the
// wire format, and treated as immutable after submission).
func (r *JobResult) Clone() *JobResult {
	if r == nil {
		return nil
	}
	cp := *r
	if r.Trials != nil { // preserve nil-ness for bit-identical JSON
		cp.Trials = make([]TrialRecord, len(r.Trials))
		for i, t := range r.Trials {
			cp.Trials[i] = t.Clone()
		}
	}
	if r.Best != nil {
		b := r.Best.Clone()
		cp.Best = &b
	}
	cp.Progress = append([]ProgressPoint(nil), r.Progress...)
	return &cp
}

// Runner executes HPT jobs.
type Runner struct {
	Trainer *trainer.Runner
	Cluster *cluster.Cluster
	// Workers bounds the local backend's real goroutine pool (not the
	// simulated slots); 0 means one worker per simulated slot.
	Workers int
	// Policy is the default trial placement policy for jobs that do not
	// set JobSpec.Policy; nil means FIFO.
	Policy sched.Policy
	// Exec is the execution backend trial bodies run on; nil means the
	// local in-process pool over Trainer (the pre-refactor behaviour,
	// bit-identical). The pipetuned daemon swaps in exec.Remote to fan
	// trials out to a pipetune-worker fleet.
	Exec exec.Backend
}

// backend resolves the execution backend, defaulting to local.
func (r *Runner) backend() exec.Backend {
	if r.Exec != nil {
		return r.Exec
	}
	return exec.NewLocal(r.Trainer)
}

// NewRunner wires a runner to a trainer and cluster.
func NewRunner(t *trainer.Runner, c *cluster.Cluster) *Runner {
	return &Runner{Trainer: t, Cluster: c}
}

// budgetIterations maps a space-size growth ratio to HyperBand bracket
// iterations: sqrt scaling, clamped to [1, 4].
func budgetIterations(ratio int) int {
	if ratio <= 1 {
		return 1
	}
	it := int(math.Sqrt(float64(ratio)) + 0.5)
	if it < 1 {
		it = 1
	}
	if it > 4 {
		it = 4
	}
	return it
}

// slotCount derives the simulated parallelism: how many BaseSys-sized
// trials the cluster fits, bounded by spec.MaxParallel. The count is taken
// against a scratch clone of the cluster — never the live one — so
// concurrent jobs sharing a Runner (the pipetuned service) cannot observe
// each other's transient allocations.
func (r *Runner) slotCount(spec JobSpec) (int, error) {
	if !r.Cluster.Fits(spec.BaseSys) {
		return 0, fmt.Errorf("tune: base config %v does not fit any node", spec.BaseSys)
	}
	// Count allocations until the scratch cluster is full; the clone is
	// discarded, so nothing needs releasing.
	scratch := r.Cluster.Clone()
	slots := 0
	for {
		if _, err := scratch.Allocate(spec.BaseSys); err != nil {
			break
		}
		slots++
	}
	if spec.MaxParallel > 0 && spec.MaxParallel < slots {
		slots = spec.MaxParallel
	}
	if slots < 1 {
		slots = 1
	}
	return slots, nil
}

// prepare validates the spec and constructs the job machinery shared by the
// event-driven and barrier execution paths.
func (r *Runner) prepare(spec JobSpec) (searcher search.Searcher, slots, workers int, err error) {
	if r.Trainer == nil || r.Cluster == nil {
		return nil, 0, 0, errors.New("tune: runner not wired")
	}
	if spec.Mode != ModeV1 && spec.Mode != ModeV2 {
		return nil, 0, 0, fmt.Errorf("tune: invalid mode %v", spec.Mode)
	}
	if spec.Objective != MaximizeAccuracy && spec.Objective != MaximizeAccuracyPerTime {
		return nil, 0, 0, fmt.Errorf("tune: invalid objective %v", spec.Objective)
	}
	if err := spec.BaseHyper.Validate(); err != nil {
		return nil, 0, 0, fmt.Errorf("tune: %w", err)
	}
	if err := spec.BaseSys.Validate(); err != nil {
		return nil, 0, 0, fmt.Errorf("tune: %w", err)
	}
	space := spec.HyperSpace
	if spec.Mode == ModeV2 {
		space = params.Concat(spec.HyperSpace, spec.SystemSpace)
	}
	if err := space.Validate(); err != nil {
		return nil, 0, 0, fmt.Errorf("tune: %w", err)
	}
	factory := spec.Searcher
	if factory == nil {
		// The default sample budget tracks the search space: folding the
		// system parameters into the search (V2) multiplies the space by
		// the system grid's size, so the HyperBand bracket structure is
		// repeated ~sqrt(ratio) times to keep per-dimension coverage
		// comparable — the mechanism behind the paper's observation that
		// V2 lengthens tuning (§7.3 reason 1).
		iterations := 1
		if spec.Mode == ModeV2 {
			iterations = budgetIterations(spec.SystemSpace.Size())
		}
		factory = func(space params.Space, r *xrand.Source) (search.Searcher, error) {
			return search.NewHyperBandIterations(space, 9, 3, iterations, r)
		}
	}
	rng := xrand.New(spec.Seed)
	searcher, err = factory(space, rng.Split())
	if err != nil {
		return nil, 0, 0, fmt.Errorf("tune: build searcher: %w", err)
	}
	slots, err = r.slotCount(spec)
	if err != nil {
		return nil, 0, 0, err
	}
	workers = r.Workers
	if workers <= 0 {
		workers = slots
	}
	return searcher, slots, workers, nil
}

// policyFor resolves the placement policy precedence: spec, runner, FIFO.
func (r *Runner) policyFor(spec JobSpec) sched.Policy {
	if spec.Policy != nil {
		return spec.Policy
	}
	if r.Policy != nil {
		return r.Policy
	}
	return sched.FIFO()
}

// resizeEvents converts a trial's epoch log into scheduler resize events:
// one for every epoch boundary at which the epoch observer switched the
// system configuration. Baseline trials run every epoch on StartSys and
// produce none; PipeTune trials re-negotiate their allocation as probing
// and settling proceed — the paper's §5.6 dynamic reconfiguration expressed
// as scheduler events rather than only re-priced in the cost model.
func resizeEvents(res *trainer.Result) []sched.Resize {
	if len(res.Epochs) == 0 {
		return nil
	}
	var out []sched.Resize
	cur := res.Epochs[0].Sys
	for _, ep := range res.Epochs[1:] {
		if ep.Sys != cur {
			out = append(out, sched.Resize{Offset: ep.EndTime - ep.Duration, Sys: ep.Sys})
			cur = ep.Sys
		}
	}
	return out
}

// trialSeed derives a trial's deterministic seed from the job seed and
// trial ID (splitmix-style odd-constant mixing).
func trialSeed(jobSeed uint64, id int) uint64 {
	return jobSeed ^ (uint64(id)+1)*0x9e3779b97f4a7c15
}

// spotSeedSalt decorrelates the spot-revocation process from every other
// consumer of the job seed (trial seeds, searcher RNG).
const spotSeedSalt uint64 = 0x5b0f5eedc0ffee11

// resumeSpec shapes a revoked trial's replacement attempt: resume from the
// deepest checkpoint at or below the last epoch the interrupted attempt
// completed. res.Epochs[0] is the init phase and epoch k lives at index k,
// so a resume-after-epoch-salv attempt replays init and then epochs
// salv+1..N: its duration is init + the original tail past epoch salv, its
// starting footprint is epoch salv+1's configuration, and the resize
// schedule is the original one re-based to the shortened timeline.
func resumeSpec(res *trainer.Result, startSys params.SysConfig, salv int) sched.ResumeSpec {
	if salv <= 0 || len(res.Epochs) < 2 {
		return sched.ResumeSpec{
			Duration: res.Duration,
			Sys:      startSys,
			Resizes:  resizeEvents(res),
		}
	}
	// base maps original-timeline instants to the resumed attempt's clock:
	// resumed time of epoch e's end = init + (EndTime[e] - EndTime[salv]).
	base := res.Epochs[salv].EndTime - res.Epochs[0].Duration
	out := sched.ResumeSpec{
		Duration:       res.Duration - base,
		Sys:            res.Epochs[salv+1].Sys,
		SalvagedEpochs: salv,
	}
	cur := out.Sys
	for _, ep := range res.Epochs[salv+2:] {
		if ep.Sys != cur {
			out.Resizes = append(out.Resizes, sched.Resize{Offset: ep.EndTime - ep.Duration - base, Sys: ep.Sys})
			cur = ep.Sys
		}
	}
	return out
}

// evictHandler builds one trial's sched.EvictHandler. The closure tracks
// the attempt's current resume point so a second revocation measures
// progress on the shortened timeline, and consults the trainer's prefix
// cache for the deepest checkpoint available under the trial's key — the
// compute-then-simulate split means the body (and its checkpoints) already
// exist when the simulated revocation fires, so the binding constraint is
// the epoch the interrupted attempt had actually reached.
func (r *Runner) evictHandler(rec *TrialRecord, key string) sched.EvictHandler {
	res := rec.Result
	salvaged := 0 // current attempt's resume point (epochs skipped)
	return func(_ int, elapsed float64) sched.ResumeSpec {
		if len(res.Epochs) < 2 {
			return sched.ResumeSpec{Duration: res.Duration, Sys: rec.StartSys}
		}
		// Attempt-local completion instant of epoch e: init duration plus
		// the original gap from the resume point's end to e's end.
		base := res.Epochs[salvaged].EndTime - res.Epochs[0].Duration
		// The restored state already sits at epoch `salvaged` when the
		// attempt begins, so progress never regresses below it.
		completed := salvaged
		for e := salvaged + 1; e < len(res.Epochs); e++ {
			if res.Epochs[e].EndTime-base > elapsed {
				break
			}
			completed = e
		}
		depth := 0
		if key != "" && r.Trainer.Cache != nil {
			depth = r.Trainer.Cache.CheckpointDepth(key)
		}
		salv := completed
		if depth < salv {
			salv = depth
		}
		salvaged = salv
		return resumeSpec(res, rec.StartSys, salv)
	}
}

// RunJob executes the HPT job to completion on the event-driven scheduler:
// every trial is admitted the moment its footprint fits the cluster under
// the placement policy, and the searcher observes each result at the
// trial's simulated completion instant. The searcher is asked for more work
// as soon as all outstanding suggestions have reported (incremental
// Observe), so search algorithms that can promote early do; with the
// default FIFO policy the schedule — and therefore TuningTime and Best —
// is identical to the legacy barrier scheduler's.
func (r *Runner) RunJob(spec JobSpec) (*JobResult, error) {
	return r.RunJobCtx(context.Background(), spec)
}

// RunJobCtx is RunJob with cancellation: the context is checked before
// every searcher batch and before every trial body, so a cancelled job
// stops within one trial's real compute time. Cancellation surfaces as an
// error satisfying errors.Is(err, ctx.Err()); the job's partial results
// are discarded — a tuning job is only meaningful complete.
func (r *Runner) RunJobCtx(ctx context.Context, spec JobSpec) (*JobResult, error) {
	searcher, slots, workers, err := r.prepare(spec)
	if err != nil {
		return nil, err
	}
	eng := sched.New(r.Cluster.SchedPool(), r.policyFor(spec), slots)
	if rates := r.Cluster.SpotRevocationRates(); rates != nil {
		// The revocation process is seeded from the job seed (salted so it
		// never correlates with trial seeds), making the whole spot
		// schedule a deterministic function of the job spec.
		eng.SetRevocations(ec2.NewSpotProcess(spec.Seed^spotSeedSalt, rates, ec2.DefaultOutageSeconds))
	}
	res := &JobResult{Spec: spec}
	outstanding := 0
	bestAcc := 0.0
	var loopErr error

	var submit func(batch []search.Suggestion)
	complete := func(rec *TrialRecord) {
		res.Trials = append(res.Trials, *rec)
		res.TotalEnergy += rec.Result.EnergyJ
		searcher.Observe([]search.Report{{ID: rec.ID, Score: rec.Score}})
		if spec.OnTrialDone != nil {
			spec.OnTrialDone(rec.ID, rec.Result)
		}
		// Ties resolve to the lower trial ID — the same winner the barrier
		// scheduler's in-order scan selects.
		if res.Best == nil || rec.Score > res.Best.Score ||
			(rec.Score == res.Best.Score && rec.ID < res.Best.ID) {
			cp := *rec
			res.Best = &cp
		}
		if rec.Result.Accuracy > bestAcc {
			bestAcc = rec.Result.Accuracy
		}
		res.Progress = append(res.Progress, ProgressPoint{
			Time:          rec.End,
			BestAccuracy:  bestAcc,
			TrialDuration: rec.Result.Duration,
		})
		outstanding--
		if outstanding == 0 && loopErr == nil {
			if next := searcher.Next(); len(next) > 0 {
				submit(next)
			}
		}
	}
	submit = func(batch []search.Suggestion) {
		if err := ctx.Err(); err != nil {
			loopErr = fmt.Errorf("tune: job cancelled: %w", err)
			eng.Halt()
			return
		}
		records, err := r.runBatch(ctx, spec, batch, workers)
		if err != nil {
			// Trials of this batch that finished before the cancellation
			// landed have paid their full compute; deliver them to
			// OnTrialDone so their knowledge (PipeTune's ground-truth
			// feed) survives even though the job result is discarded.
			// Order is suggestion order here, not simulated completion
			// order — the schedule was never established. ctx.Err()
			// covers both cancel() and deadline expiry.
			if ctx.Err() != nil && errors.Is(err, ctx.Err()) && spec.OnTrialDone != nil {
				for i := range records {
					if records[i].Result != nil {
						spec.OnTrialDone(records[i].ID, records[i].Result)
					}
				}
			}
			loopErr = err
			eng.Halt()
			return
		}
		outstanding += len(records)
		for i := range records {
			rec := &records[i]
			task := sched.Task{
				ID:       rec.ID,
				Arrival:  eng.Now(),
				Sys:      rec.StartSys,
				Duration: rec.Result.Duration,
				Resizes:  resizeEvents(rec.Result),
			}
			var onEvict sched.EvictHandler
			if eng.HasRevocations() {
				var key string
				if r.Trainer.Cache != nil {
					key = r.Trainer.PrefixKey(spec.Workload, rec.Hyper, trialSeed(spec.Seed, rec.ID))
				}
				onEvict = r.evictHandler(rec, key)
			}
			err := eng.SubmitRevocable(task, onEvict, func(_ sched.Task, st sched.TaskStats) {
				rec.Start, rec.End = st.Start, st.End
				rec.Resizes, rec.ResizesDenied = st.ResizesGranted, st.ResizesDenied
				rec.Class, rec.Spot = st.Class, st.Spot
				rec.Revocations, rec.SalvagedEpochs = st.Revocations, st.SalvagedEpochs
				rec.WastedSeconds, rec.CostUSD = st.WastedSeconds, st.CostUSD
				complete(rec)
			})
			if err != nil {
				loopErr = fmt.Errorf("tune: trial %d: %w", rec.ID, err)
				eng.Halt()
				return
			}
		}
	}

	first := searcher.Next()
	if len(first) == 0 {
		return nil, errors.New("tune: searcher proposed no trials")
	}
	submit(first)
	if loopErr != nil {
		return nil, loopErr
	}
	if err := eng.Run(); err != nil && loopErr == nil {
		return nil, fmt.Errorf("tune: %w", err)
	}
	if loopErr != nil {
		return nil, loopErr
	}
	if res.Best == nil {
		return nil, errors.New("tune: searcher proposed no trials")
	}
	// The makespan is the last trial completion, not eng.Now(): a revoked
	// spot node's replacement arrival may trail the final completion.
	// Without spot capacity the two coincide, keeping legacy output
	// bit-identical.
	for i := range res.Trials {
		if res.Trials[i].End > res.TuningTime {
			res.TuningTime = res.Trials[i].End
		}
	}
	return res, nil
}

// RunJobBarrier executes the HPT job under the pre-refactor batch-barrier
// model: every searcher batch runs to its collective makespan before any
// result is observed. Retained as the regression reference the event-driven
// scheduler is benchmarked against (bench_test.go) — its TuningTime is the
// ceiling RunJob must stay at or below.
func (r *Runner) RunJobBarrier(spec JobSpec) (*JobResult, error) {
	searcher, slots, workers, err := r.prepare(spec)
	if err != nil {
		return nil, err
	}

	res := &JobResult{Spec: spec}
	clock := 0.0 // simulated wall clock; batches are barrier-synchronised

	for {
		batch := searcher.Next()
		if len(batch) == 0 {
			break
		}
		records, err := r.runBatch(context.Background(), spec, batch, workers)
		if err != nil {
			return nil, err
		}
		// Simulated resource-aware scheduling of the batch: trials claim
		// their actual footprint (V2's oversized trials therefore reduce
		// effective parallelism, one of the reasons its tuning time grows,
		// §7.3), bounded additionally by the MaxParallel slot count.
		end, err := r.scheduleBatch(records, clock, slots)
		if err != nil {
			return nil, err
		}
		clock = end
		reports := make([]search.Report, 0, len(records))
		for i := range records {
			reports = append(reports, search.Report{ID: records[i].ID, Score: records[i].Score})
		}
		searcher.Observe(reports)

		// Fold into the job result, maintaining the progress curve in
		// completion-time order.
		res.Trials = append(res.Trials, records...)
		for i := range records {
			rec := &records[i]
			res.TotalEnergy += rec.Result.EnergyJ
			if spec.OnTrialDone != nil {
				spec.OnTrialDone(rec.ID, rec.Result)
			}
			if res.Best == nil || rec.Score > res.Best.Score {
				cp := *rec
				res.Best = &cp
			}
		}
	}
	if res.Best == nil {
		return nil, errors.New("tune: searcher proposed no trials")
	}
	res.TuningTime = clock

	// Progress curve: trials sorted by simulated completion time.
	done := make([]TrialRecord, len(res.Trials))
	copy(done, res.Trials)
	sort.SliceStable(done, func(i, j int) bool { return done[i].End < done[j].End })
	bestAcc := 0.0
	for _, rec := range done {
		if rec.Result.Accuracy > bestAcc {
			bestAcc = rec.Result.Accuracy
		}
		res.Progress = append(res.Progress, ProgressPoint{
			Time:          rec.End,
			BestAccuracy:  bestAcc,
			TrialDuration: rec.Result.Duration,
		})
	}
	return res, nil
}

// scheduleBatch assigns simulated start/end times to the batch's records
// in ID order against a scratch copy of the cluster: each trial waits until
// its own system footprint fits (FIFO within the batch), with at most
// `slots` trials in flight. It returns the batch makespan end time.
func (r *Runner) scheduleBatch(records []TrialRecord, clock float64, slots int) (float64, error) {
	scratch := r.Cluster.Clone()
	type running struct {
		end   float64
		alloc *cluster.Alloc
	}
	var inFlight []running
	now := clock
	finishEarliest := func() error {
		// Pop the earliest-finishing trial and free its resources.
		idx := 0
		for i := 1; i < len(inFlight); i++ {
			if inFlight[i].end < inFlight[idx].end {
				idx = i
			}
		}
		if inFlight[idx].end > now {
			now = inFlight[idx].end
		}
		if err := inFlight[idx].alloc.Release(); err != nil {
			return err
		}
		inFlight = append(inFlight[:idx], inFlight[idx+1:]...)
		return nil
	}
	for i := range records {
		rec := &records[i]
		for {
			if len(inFlight) < slots {
				alloc, err := scratch.Allocate(rec.StartSys)
				if err == nil {
					rec.Start = now
					rec.End = now + rec.Result.Duration
					inFlight = append(inFlight, running{end: rec.End, alloc: alloc})
					break
				}
				if !errors.Is(err, cluster.ErrInsufficient) {
					return 0, err
				}
			}
			if len(inFlight) == 0 {
				return 0, fmt.Errorf("tune: trial %d config %v cannot ever fit", rec.ID, rec.StartSys)
			}
			if err := finishEarliest(); err != nil {
				return 0, err
			}
		}
	}
	end := now
	for _, f := range inFlight {
		if f.end > end {
			end = f.end
		}
	}
	return end, nil
}

// runBatch executes one searcher batch on the execution backend and
// returns the records in suggestion order (deterministic). The tuning
// layer resolves each suggestion into a concrete trial body — applied
// hyperparameters, budget-scaled epochs, validated system footprint,
// derived trial seed, per-trial observer — and the backend only decides
// where that body computes. A cancelled context skips trials that have
// not started yet; trials already inside a trainer run to completion (a
// trial body is the cancellation granularity). On error the records
// completed so far are still returned (their Result is non-nil) so the
// caller can salvage their knowledge.
func (r *Runner) runBatch(ctx context.Context, spec JobSpec, batch []search.Suggestion, workers int) ([]TrialRecord, error) {
	records := make([]TrialRecord, len(batch))
	errs := make([]error, len(batch))
	trials := make([]exec.Trial, 0, len(batch))
	idx := make([]int, 0, len(batch)) // trial position -> record index
	tc := exec.CaptureTrainerConfig(r.Trainer)
	// Cost-aware policies on heterogeneous clusters get a deterministic
	// preferred-class hint stamped on each assignment: the class the policy
	// would choose on an idle cluster, priced from the cost model's
	// predicted duration. Actual placement is re-decided at simulated
	// dispatch against live occupancy; the hint only routes the compute.
	chooser, _ := r.policyFor(spec).(sched.ClassChooser)
	var hintPool *sched.Pool
	if chooser != nil {
		if p := r.Cluster.SchedPool(); p.NumClasses() > 0 {
			hintPool = p
		}
	}
	for i, sug := range batch {
		// Cancellation outranks per-trial validation, as it did when the
		// pre-refactor pool checked the context before each trial body: a
		// cancelled job must classify as cancelled even when the batch
		// also contains an unfittable suggestion.
		if err := ctx.Err(); err != nil {
			errs[i] = fmt.Errorf("tune: job cancelled: %w", err)
			continue
		}
		h := sug.Assignment.ApplyHyper(spec.BaseHyper)
		// HyperBand rungs scale the epoch budget.
		if sug.BudgetFrac > 0 && sug.BudgetFrac < 1 {
			scaled := int(float64(h.Epochs)*sug.BudgetFrac + 0.5)
			if scaled < 1 {
				scaled = 1
			}
			h.Epochs = scaled
		}
		sys := spec.BaseSys
		if spec.Mode == ModeV2 {
			sys = sug.Assignment.ApplySys(spec.BaseSys)
			if !r.Cluster.Fits(sys) {
				errs[i] = fmt.Errorf("tune: trial config %v does not fit the cluster", sys)
				continue
			}
		}
		var obs trainer.EpochObserver
		if spec.TrialObserver != nil {
			obs = spec.TrialObserver(sug.ID)
		}
		var restart func()
		if spec.TrialRestart != nil {
			id := sug.ID
			restart = func() { spec.TrialRestart(id) }
		}
		records[i] = TrialRecord{
			ID:         sug.ID,
			Assignment: sug.Assignment.Clone(),
			Hyper:      h,
			StartSys:   sys,
			BudgetFrac: sug.BudgetFrac,
		}
		seed := trialSeed(spec.Seed, sug.ID)
		var cacheKey string
		if r.Trainer.Cache != nil {
			// Derive the prefix-cache key once here so every backend —
			// the in-process pool and each remote worker — uses the
			// submitting trainer's key, not a locally re-derived one.
			cacheKey = r.Trainer.PrefixKey(spec.Workload, h, seed)
		}
		var classHint string
		if hintPool != nil {
			if d, err := r.Trainer.PredictDuration(spec.Workload, h, sys); err == nil {
				classHint = sched.PreferredClass(hintPool, chooser, sys, d)
			}
		}
		trials = append(trials, exec.Trial{
			ID:       sug.ID,
			Workload: spec.Workload,
			Hyper:    h,
			Sys:      sys,
			Seed:     seed,
			Observer: obs,
			Restart:  restart,
			Trainer:  tc,
			CacheKey: cacheKey,
			Class:    classHint,
		})
		idx = append(idx, i)
	}
	results, runErrs := r.backend().Run(ctx, trials, workers)
	for k, i := range idx {
		if err := runErrs[k]; err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				errs[i] = fmt.Errorf("tune: job cancelled: %w", err)
			} else {
				errs[i] = fmt.Errorf("tune: trial %d: %w", records[i].ID, err)
			}
			records[i] = TrialRecord{} // failed trials leave no partial record
			continue
		}
		records[i].Result = results[k]
		records[i].Score = spec.Objective.Score(results[k])
	}
	for _, err := range errs {
		if err != nil {
			return records, err
		}
	}
	return records, nil
}
