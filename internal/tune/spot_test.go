package tune

import (
	"encoding/json"
	"strings"
	"testing"

	"pipetune/internal/cluster"
	"pipetune/internal/dataset"
	"pipetune/internal/trainer"
	"pipetune/internal/workload"
)

// The spot-recovery end-to-end suite. Revocations in this system are
// SIGKILL-free by construction: trials compute first (real SGD) and are
// then placed on the discrete-event timeline, so a simulated revocation
// reshapes a trial's schedule — eviction, outage, checkpoint resume —
// without ever touching its already-computed result. These tests pin that
// contract from the outside: a job on a revocation-riddled spot fleet
// must report exactly the training results, scores and best trial of the
// same job on an undisturbed fleet, while the schedule itself shows real
// interruptions and (with the trial cache) salvaged epochs.

// spotFleet builds a 2-node single-shape cluster; spot makes both nodes
// revocable at a rate aggressive enough that a small tuning job sees
// several interruptions.
func spotFleet(t *testing.T, spot bool) *cluster.Cluster {
	t.Helper()
	nc := cluster.NodeClass{
		Name:  "m",
		Spec:  cluster.NodeSpec{Cores: 16, MemoryGB: 32},
		Count: 2, HourlyUSD: 0.8,
	}
	if spot {
		nc.Spot = true
		nc.RevocationsPerHour = 20
	}
	c, err := cluster.NewClasses([]cluster.NodeClass{nc})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func spotRunner(t *testing.T, spot, cache bool) *Runner {
	t.Helper()
	tr := trainer.NewRunner()
	tr.Data = dataset.Config{TrainSize: 96, TestSize: 48}
	if cache {
		tr.Cache = trainer.NewTrialCache(0)
	}
	return NewRunner(tr, spotFleet(t, spot))
}

// mustJSONResult renders one trial's training result for comparison.
func mustJSONResult(t *testing.T, r *trainer.Result) string {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// assertSameSearch checks that two job results agree on everything the
// search produced — per-trial training results, scores, hyperparameters,
// and the winning trial — regardless of how the schedules differ.
func assertSameSearch(t *testing.T, disturbed, base *JobResult) {
	t.Helper()
	if len(disturbed.Trials) != len(base.Trials) {
		t.Fatalf("%d trials vs %d undisturbed", len(disturbed.Trials), len(base.Trials))
	}
	baseline := map[int]*TrialRecord{}
	for i := range base.Trials {
		baseline[base.Trials[i].ID] = &base.Trials[i]
	}
	for i := range disturbed.Trials {
		d := &disturbed.Trials[i]
		b := baseline[d.ID]
		if b == nil {
			t.Fatalf("trial %d missing from the undisturbed run", d.ID)
		}
		if dj, bj := mustJSONResult(t, d.Result), mustJSONResult(t, b.Result); dj != bj || d.Score != b.Score {
			t.Fatalf("trial %d result diverged under revocations:\n%+v\nvs\n%+v", d.ID, d.Result, b.Result)
		}
		if d.Hyper != b.Hyper || d.StartSys != b.StartSys {
			t.Fatalf("trial %d configuration diverged: %+v vs %+v", d.ID, d, b)
		}
	}
	if disturbed.Best.ID != base.Best.ID ||
		disturbed.Best.Result.Accuracy != base.Best.Result.Accuracy {
		t.Fatalf("best trial diverged: %d (%v) vs %d (%v)",
			disturbed.Best.ID, disturbed.Best.Result.Accuracy,
			base.Best.ID, base.Best.Result.Accuracy)
	}
}

// TestSpotRecoveryMatchesUndisturbedRun is the tentpole's e2e acceptance:
// mid-trial spot revocations must not change any trial's outcome, and —
// with the trial cache holding checkpoints — revoked trials resume from
// their deepest checkpoint, retraining strictly fewer epochs than a
// from-scratch retry.
func TestSpotRecoveryMatchesUndisturbedRun(t *testing.T) {
	w := workload.Workload{Model: workload.LeNet5, Dataset: workload.MNIST}
	spec := paritySpec(w, ModeV1, 42)

	base, err := spotRunner(t, false, true).RunJob(spec)
	if err != nil {
		t.Fatal(err)
	}
	disturbed, err := spotRunner(t, true, true).RunJob(spec)
	if err != nil {
		t.Fatal(err)
	}
	assertSameSearch(t, disturbed, base)

	revocations, salvaged := 0, 0
	for i := range disturbed.Trials {
		d := &disturbed.Trials[i]
		revocations += d.Revocations
		salvaged += d.SalvagedEpochs
		if d.SalvagedEpochs > 0 {
			// The final attempt resumed from a checkpoint: its schedule
			// occupancy must be strictly shorter than full retraining.
			if got := d.End - d.Start; got >= d.Result.Duration {
				t.Fatalf("trial %d salvaged %d epochs yet occupied %vs >= full %vs",
					d.ID, d.SalvagedEpochs, got, d.Result.Duration)
			}
		}
		if d.Revocations > 0 && d.WastedSeconds <= 0 {
			t.Fatalf("trial %d survived %d revocations but wasted no time: %+v", d.ID, d.Revocations, d)
		}
	}
	if revocations == 0 {
		t.Fatal("no trial was revoked; the recovery path went unexercised")
	}
	if salvaged == 0 {
		t.Fatal("no epochs salvaged despite the trial cache holding checkpoints")
	}

	// The undisturbed fleet must show zero revocation activity.
	for i := range base.Trials {
		if b := &base.Trials[i]; b.Revocations != 0 || b.SalvagedEpochs != 0 || b.WastedSeconds != 0 {
			t.Fatalf("on-demand trial %d reports spot activity: %+v", b.ID, b)
		}
	}
}

// TestSpotRecoveryWithoutCacheRetrainsFromScratch: with no trial cache
// there are no checkpoints, so every revoked attempt retries from scratch
// — zero salvage — yet the search outcome still matches the undisturbed
// run.
func TestSpotRecoveryWithoutCacheRetrainsFromScratch(t *testing.T) {
	w := workload.Workload{Model: workload.LeNet5, Dataset: workload.MNIST}
	spec := paritySpec(w, ModeV1, 42)

	base, err := spotRunner(t, false, false).RunJob(spec)
	if err != nil {
		t.Fatal(err)
	}
	disturbed, err := spotRunner(t, true, false).RunJob(spec)
	if err != nil {
		t.Fatal(err)
	}
	assertSameSearch(t, disturbed, base)

	revocations := 0
	for i := range disturbed.Trials {
		d := &disturbed.Trials[i]
		revocations += d.Revocations
		if d.SalvagedEpochs != 0 {
			t.Fatalf("trial %d salvaged %d epochs with no cache to checkpoint into", d.ID, d.SalvagedEpochs)
		}
	}
	if revocations == 0 {
		t.Fatal("no trial was revoked; the from-scratch path went unexercised")
	}
}

// TestSingleClassClusterParity: a NewClasses cluster with one anonymous
// class is the legacy cluster — JobResult JSON byte-identical to
// cluster.New, with none of the class/spot fields appearing.
func TestSingleClassClusterParity(t *testing.T) {
	w := workload.Workload{Model: workload.LeNet5, Dataset: workload.MNIST}
	spec := paritySpec(w, ModeV1, 42)

	mk := func(c *cluster.Cluster) *Runner {
		tr := trainer.NewRunner()
		tr.Data = dataset.Config{TrainSize: 96, TestSize: 48}
		return NewRunner(tr, c)
	}
	legacy, err := cluster.New(4, cluster.NodeSpec{Cores: 32, MemoryGB: 64})
	if err != nil {
		t.Fatal(err)
	}
	classed, err := cluster.NewClasses([]cluster.NodeClass{
		{Spec: cluster.NodeSpec{Cores: 32, MemoryGB: 64}, Count: 4}})
	if err != nil {
		t.Fatal(err)
	}
	want, err := mk(legacy).RunJob(spec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := mk(classed).RunJob(spec)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, gotJSON := mustJSON(t, want), mustJSON(t, got)
	if wantJSON != gotJSON {
		t.Fatal("single anonymous class diverges from the legacy cluster")
	}
	for _, key := range []string{`"class"`, `"spot"`, `"revocations"`, `"salvagedEpochs"`, `"wastedSeconds"`, `"costUSD"`} {
		if strings.Contains(wantJSON, key) {
			t.Fatalf("legacy JobResult JSON leaks the new %s field", key)
		}
	}
}
