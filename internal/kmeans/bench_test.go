package kmeans

import (
	"testing"

	"pipetune/internal/xrand"
)

func benchPoints(n, dim int) [][]float64 {
	r := xrand.New(7)
	points := make([][]float64, n)
	for i := range points {
		c := float64(i%2) * 10
		p := make([]float64, dim)
		for d := range p {
			p[d] = c + r.NormFloat64()
		}
		points[i] = p
	}
	return points
}

func BenchmarkFit384x58(b *testing.B) {
	// The Figure 8 shape: 384 profiles of 58 features.
	points := benchPoints(384, 58)
	r := xrand.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fit(points, DefaultConfig(), r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPredict(b *testing.B) {
	points := benchPoints(256, 58)
	r := xrand.New(1)
	m, err := Fit(points, DefaultConfig(), r)
	if err != nil {
		b.Fatal(err)
	}
	query := points[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := m.Predict(query); err != nil {
			b.Fatal(err)
		}
	}
}
