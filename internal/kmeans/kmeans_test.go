package kmeans

import (
	"math"
	"testing"
	"testing/quick"

	"pipetune/internal/xrand"
)

// twoBlobs generates n points split between two well-separated Gaussians.
func twoBlobs(r *xrand.Source, n int) (points [][]float64, truth []int) {
	points = make([][]float64, n)
	truth = make([]int, n)
	for i := range points {
		c := i % 2
		cx := float64(c) * 10
		points[i] = []float64{cx + r.NormFloat64(), cx + r.NormFloat64()}
		truth[i] = c
	}
	return points, truth
}

func TestSeparatesTwoBlobs(t *testing.T) {
	r := xrand.New(1)
	points, truth := twoBlobs(r, 200)
	m, err := Fit(points, DefaultConfig(), r)
	if err != nil {
		t.Fatal(err)
	}
	// Labels must be a relabelling of the truth: agreement either direct
	// or inverted should be near-perfect.
	agree := 0
	for i := range truth {
		if m.Labels[i] == truth[i] {
			agree++
		}
	}
	frac := float64(agree) / float64(len(truth))
	if frac < 0.98 && frac > 0.02 {
		t.Fatalf("cluster agreement %.2f; blobs not separated", frac)
	}
}

func TestInertiaDecreasesWithBetterK(t *testing.T) {
	r := xrand.New(3)
	points, _ := twoBlobs(r, 200)
	m1, err := Fit(points, Config{K: 1, MaxIters: 50, Restarts: 2}, r)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Fit(points, Config{K: 2, MaxIters: 50, Restarts: 2}, r)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Inertia >= m1.Inertia {
		t.Fatalf("k=2 inertia %v not below k=1 inertia %v", m2.Inertia, m1.Inertia)
	}
}

func TestPredictNearestCentroid(t *testing.T) {
	r := xrand.New(5)
	points, _ := twoBlobs(r, 100)
	m, err := Fit(points, DefaultConfig(), r)
	if err != nil {
		t.Fatal(err)
	}
	// A point at one blob centre must be predicted into the cluster whose
	// centroid is nearest, with a small distance.
	c, d, err := m.Predict([]float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	other := 1 - c
	dOther := math.Hypot(m.Centroids[other][0], m.Centroids[other][1])
	if d >= dOther {
		t.Fatalf("predicted distance %v not below other centroid distance %v", d, dOther)
	}
}

func TestPredictValidation(t *testing.T) {
	r := xrand.New(5)
	points, _ := twoBlobs(r, 50)
	m, err := Fit(points, DefaultConfig(), r)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Predict([]float64{1, 2, 3}); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	empty := &Model{}
	if _, _, err := empty.Predict([]float64{1}); err == nil {
		t.Fatal("empty model accepted")
	}
}

func TestRadius(t *testing.T) {
	r := xrand.New(7)
	points, _ := twoBlobs(r, 200)
	m, err := Fit(points, DefaultConfig(), r)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < m.K; c++ {
		rad, err := m.Radius(c)
		if err != nil {
			t.Fatal(err)
		}
		// Unit-variance 2D Gaussian: RMS distance ~ sqrt(2) ≈ 1.41.
		if rad < 0.8 || rad > 2.5 {
			t.Fatalf("cluster %d radius %v implausible for unit blobs", c, rad)
		}
	}
	if _, err := m.Radius(99); err == nil {
		t.Fatal("out-of-range cluster accepted")
	}
}

func TestMembersWithinFewRadii(t *testing.T) {
	r := xrand.New(9)
	points, _ := twoBlobs(r, 300)
	m, err := Fit(points, DefaultConfig(), r)
	if err != nil {
		t.Fatal(err)
	}
	outliers := 0
	for i, p := range points {
		rad, _ := m.Radius(m.Labels[i])
		_, d, err := m.Predict(p)
		if err != nil {
			t.Fatal(err)
		}
		if d > 3*rad {
			outliers++
		}
	}
	if outliers > len(points)/20 {
		t.Fatalf("%d/%d members beyond 3 radii", outliers, len(points))
	}
}

func TestFitValidation(t *testing.T) {
	r := xrand.New(1)
	if _, err := Fit(nil, DefaultConfig(), r); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := Fit([][]float64{{1}}, Config{K: 2}, r); err == nil {
		t.Fatal("fewer points than k accepted")
	}
	if _, err := Fit([][]float64{{1}, {2}}, Config{K: 0}, r); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := Fit([][]float64{{}, {}}, Config{K: 1}, r); err == nil {
		t.Fatal("zero-dim points accepted")
	}
	if _, err := Fit([][]float64{{1, 2}, {1}}, Config{K: 1}, r); err == nil {
		t.Fatal("ragged points accepted")
	}
}

func TestSinglePointPerCluster(t *testing.T) {
	r := xrand.New(2)
	points := [][]float64{{0, 0}, {100, 100}}
	m, err := Fit(points, Config{K: 2, MaxIters: 10, Restarts: 2}, r)
	if err != nil {
		t.Fatal(err)
	}
	if m.Inertia > 1e-9 {
		t.Fatalf("two points, two clusters: inertia %v should be 0", m.Inertia)
	}
	if m.Labels[0] == m.Labels[1] {
		t.Fatal("distinct points share a cluster")
	}
}

func TestDuplicatePointsHandled(t *testing.T) {
	r := xrand.New(4)
	points := [][]float64{{1, 1}, {1, 1}, {1, 1}, {1, 1}}
	m, err := Fit(points, Config{K: 2, MaxIters: 10, Restarts: 1}, r)
	if err != nil {
		t.Fatal(err)
	}
	if m.Inertia > 1e-9 {
		t.Fatalf("identical points: inertia %v", m.Inertia)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	run := func() *Model {
		r := xrand.New(42)
		points, _ := twoBlobs(r, 100)
		m, err := Fit(points, DefaultConfig(), r)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := run(), run()
	if a.Inertia != b.Inertia {
		t.Fatalf("same seed, different inertia: %v vs %v", a.Inertia, b.Inertia)
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("same seed, different labels")
		}
	}
}

// Property: every label is in range, cluster sizes sum to n, and inertia
// equals the sum of per-cluster inertias.
func TestQuickModelInvariants(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%80 + 4
		r := xrand.New(seed)
		points, _ := twoBlobs(r, n)
		m, err := Fit(points, Config{K: 2, MaxIters: 30, Restarts: 1}, r)
		if err != nil {
			return false
		}
		total := 0
		for _, s := range m.ClusterSize {
			total += s
		}
		if total != n {
			return false
		}
		sum := 0.0
		for _, ci := range m.ClusterInertia {
			sum += ci
		}
		if math.Abs(sum-m.Inertia) > 1e-6*(1+m.Inertia) {
			return false
		}
		for _, l := range m.Labels {
			if l < 0 || l >= 2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
