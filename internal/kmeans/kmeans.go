// Package kmeans implements Lloyd's algorithm with k-means++ seeding — the
// similarity function PipeTune's ground-truth phase uses (§5.4): historical
// per-epoch profiles are clustered (k=2 in the paper, one cluster per
// workload family), and a new profile is "similar" when its distance to the
// nearest centroid is within the cluster's inertia-derived radius (§5.6).
//
// The implementation mirrors scikit-learn's KMeans at the feature level:
// inertia (within-cluster sum of squared distances), per-cluster membership
// and centroid-distance prediction.
package kmeans

import (
	"errors"
	"fmt"
	"math"

	"pipetune/internal/xrand"
)

// Model is a fitted clustering.
type Model struct {
	K         int         `json:"k"`
	Centroids [][]float64 `json:"centroids"`
	// Labels holds the cluster assignment of each training point, in
	// input order.
	Labels []int `json:"labels"`
	// Inertia is the total within-cluster sum of squared distances.
	Inertia float64 `json:"inertia"`
	// ClusterInertia is the per-cluster share of Inertia.
	ClusterInertia []float64 `json:"clusterInertia"`
	// ClusterSize is the number of training points per cluster.
	ClusterSize []int `json:"clusterSize"`
}

// Config controls fitting.
type Config struct {
	K        int
	MaxIters int
	// Restarts runs the whole fit multiple times and keeps the lowest
	// inertia, as scikit-learn's n_init does.
	Restarts int
}

// DefaultConfig mirrors the paper's k=2 with robust defaults.
func DefaultConfig() Config {
	return Config{K: 2, MaxIters: 100, Restarts: 4}
}

func sqDist(a, b []float64) float64 {
	sum := 0.0
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return sum
}

// Fit clusters the points (each a d-dimensional vector) into cfg.K groups.
func Fit(points [][]float64, cfg Config, r *xrand.Source) (*Model, error) {
	if cfg.K < 1 {
		return nil, fmt.Errorf("kmeans: k=%d invalid", cfg.K)
	}
	if len(points) < cfg.K {
		return nil, fmt.Errorf("kmeans: %d points < k=%d", len(points), cfg.K)
	}
	dim := len(points[0])
	if dim == 0 {
		return nil, errors.New("kmeans: zero-dimensional points")
	}
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("kmeans: point %d has dim %d, want %d", i, len(p), dim)
		}
	}
	if cfg.MaxIters < 1 {
		cfg.MaxIters = 100
	}
	if cfg.Restarts < 1 {
		cfg.Restarts = 1
	}

	var best *Model
	for restart := 0; restart < cfg.Restarts; restart++ {
		m := fitOnce(points, cfg, r)
		if best == nil || m.Inertia < best.Inertia {
			best = m
		}
	}
	return best, nil
}

// fitOnce runs k-means++ seeding plus Lloyd iterations.
func fitOnce(points [][]float64, cfg Config, r *xrand.Source) *Model {
	dim := len(points[0])
	centroids := seedPlusPlus(points, cfg.K, r)
	labels := make([]int, len(points))

	for iter := 0; iter < cfg.MaxIters; iter++ {
		changed := false
		for i, p := range points {
			best, bestD := 0, sqDist(p, centroids[0])
			for c := 1; c < cfg.K; c++ {
				if d := sqDist(p, centroids[c]); d < bestD {
					best, bestD = c, d
				}
			}
			if labels[i] != best {
				labels[i] = best
				changed = true
			}
		}
		// Recompute centroids.
		counts := make([]int, cfg.K)
		sums := make([][]float64, cfg.K)
		for c := range sums {
			sums[c] = make([]float64, dim)
		}
		for i, p := range points {
			counts[labels[i]]++
			for d, v := range p {
				sums[labels[i]][d] += v
			}
		}
		for c := range centroids {
			if counts[c] == 0 {
				// Re-seed an empty cluster at a random point.
				copy(centroids[c], points[r.Intn(len(points))])
				changed = true
				continue
			}
			for d := range centroids[c] {
				centroids[c][d] = sums[c][d] / float64(counts[c])
			}
		}
		if !changed && iter > 0 {
			break
		}
	}

	m := &Model{
		K:              cfg.K,
		Centroids:      centroids,
		Labels:         labels,
		ClusterInertia: make([]float64, cfg.K),
		ClusterSize:    make([]int, cfg.K),
	}
	for i, p := range points {
		d := sqDist(p, centroids[labels[i]])
		m.Inertia += d
		m.ClusterInertia[labels[i]] += d
		m.ClusterSize[labels[i]]++
	}
	return m
}

// seedPlusPlus picks initial centroids with the k-means++ distribution.
func seedPlusPlus(points [][]float64, k int, r *xrand.Source) [][]float64 {
	centroids := make([][]float64, 0, k)
	first := make([]float64, len(points[0]))
	copy(first, points[r.Intn(len(points))])
	centroids = append(centroids, first)

	dists := make([]float64, len(points))
	for len(centroids) < k {
		total := 0.0
		for i, p := range points {
			d := sqDist(p, centroids[0])
			for _, c := range centroids[1:] {
				if dd := sqDist(p, c); dd < d {
					d = dd
				}
			}
			dists[i] = d
			total += d
		}
		var idx int
		if total == 0 {
			idx = r.Intn(len(points))
		} else {
			target := r.Float64() * total
			acc := 0.0
			for i, d := range dists {
				acc += d
				if acc >= target {
					idx = i
					break
				}
			}
		}
		next := make([]float64, len(points[idx]))
		copy(next, points[idx])
		centroids = append(centroids, next)
	}
	return centroids
}

// Predict returns the nearest cluster and the Euclidean distance to its
// centroid.
func (m *Model) Predict(p []float64) (cluster int, distance float64, err error) {
	if len(m.Centroids) == 0 {
		return 0, 0, errors.New("kmeans: empty model")
	}
	if len(p) != len(m.Centroids[0]) {
		return 0, 0, fmt.Errorf("kmeans: point dim %d, model dim %d", len(p), len(m.Centroids[0]))
	}
	best, bestD := 0, sqDist(p, m.Centroids[0])
	for c := 1; c < len(m.Centroids); c++ {
		if d := sqDist(p, m.Centroids[c]); d < bestD {
			best, bestD = c, d
		}
	}
	return best, math.Sqrt(bestD), nil
}

// Radius returns the similarity radius of a cluster: the RMS distance of
// its members to the centroid (√(cluster inertia / size)). §5.6 compares a
// new point's centroid distance against this inertia-derived scale to
// decide between reuse and re-probing.
func (m *Model) Radius(cluster int) (float64, error) {
	if cluster < 0 || cluster >= m.K {
		return 0, fmt.Errorf("kmeans: cluster %d out of range", cluster)
	}
	if m.ClusterSize[cluster] == 0 {
		return 0, nil
	}
	return math.Sqrt(m.ClusterInertia[cluster] / float64(m.ClusterSize[cluster])), nil
}
