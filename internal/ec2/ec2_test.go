package ec2

import (
	"math"
	"testing"
)

func TestTrialCountExponential(t *testing.T) {
	prev := 0
	for k := 1; k <= 6; k++ {
		n, err := TrialCount(k, 3)
		if err != nil {
			t.Fatal(err)
		}
		if n != int(math.Pow(3, float64(k))) {
			t.Fatalf("TrialCount(%d,3) = %d", k, n)
		}
		if n <= prev {
			t.Fatal("trial count not growing")
		}
		prev = n
	}
	if _, err := TrialCount(0, 3); err == nil {
		t.Fatal("zero params accepted")
	}
	if _, err := TrialCount(3, 0); err == nil {
		t.Fatal("zero values accepted")
	}
}

func TestTuningTimeGrowsExponentially(t *testing.T) {
	h1, err := TuningHours(M44XLarge, 1, 120)
	if err != nil {
		t.Fatal(err)
	}
	h6, err := TuningHours(M44XLarge, 6, 120)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := h6 / h1; math.Abs(ratio-243) > 1e-9 { // 3^5
		t.Fatalf("6-param/1-param hours ratio = %v, want 243", ratio)
	}
}

func TestBiggerInstancesFasterButCostlier(t *testing.T) {
	hSmall, _ := TuningHours(M44XLarge, 4, 120)
	hBig, _ := TuningHours(M524XLarge, 4, 120)
	if hBig >= hSmall {
		t.Fatalf("m5.24xlarge (%v h) not faster than m4.4xlarge (%v h)", hBig, hSmall)
	}
	cSmall, _ := TuningCostUSD(M44XLarge, 4, 120)
	cBig, _ := TuningCostUSD(M524XLarge, 4, 120)
	if cBig <= cSmall {
		t.Fatalf("m5.24xlarge ($%v) not costlier than m4.4xlarge ($%v)", cBig, cSmall)
	}
}

func TestAllSpecsValid(t *testing.T) {
	for _, it := range All() {
		spec, err := SpecFor(it)
		if err != nil {
			t.Fatal(err)
		}
		if spec.VCPUs <= 0 || spec.HourlyUSD <= 0 || spec.SpeedFactor <= 0 {
			t.Fatalf("%v spec invalid: %+v", it, spec)
		}
		if it.String() == "" {
			t.Fatalf("%v has no name", it)
		}
	}
	if _, err := SpecFor(InstanceType(0)); err == nil {
		t.Fatal("unknown instance accepted")
	}
}

func TestValidation(t *testing.T) {
	if _, err := TuningHours(M44XLarge, 2, 0); err == nil {
		t.Fatal("zero trial duration accepted")
	}
	if _, err := TuningHours(InstanceType(99), 2, 10); err == nil {
		t.Fatal("unknown instance accepted")
	}
	if _, err := TuningCostUSD(InstanceType(99), 2, 10); err == nil {
		t.Fatal("unknown instance accepted in cost")
	}
}
