// Package ec2 models the cloud-cost arithmetic behind Figure 1: exhaustive
// hyperparameter exploration on ML-optimised EC2 instances. Tuning time
// grows exponentially with the number of tuned parameters (3^k trials for
// k parameters at 3 values each), and the dollar cost follows the
// instance's hourly on-demand rate.
package ec2

import (
	"fmt"
	"math"
)

// InstanceType identifies one of the Figure 1 instance shapes.
type InstanceType int

// The three instances of Figure 1.
const (
	M44XLarge  InstanceType = iota + 1 // m4.4xlarge
	M512XLarge                         // m5.12xlarge
	M524XLarge                         // m5.24xlarge
)

// String returns the AWS instance name.
func (t InstanceType) String() string {
	switch t {
	case M44XLarge:
		return "m4.4xlarge"
	case M512XLarge:
		return "m5.12xlarge"
	case M524XLarge:
		return "m5.24xlarge"
	default:
		return fmt.Sprintf("instance(%d)", int(t))
	}
}

// Spec holds the pricing-relevant shape of an instance.
type Spec struct {
	VCPUs int
	// MemoryGB is the instance's RAM, the second axis of the cluster
	// plane's node shapes.
	MemoryGB int
	// HourlyUSD is the on-demand us-east-1 rate at the time of the paper
	// (2020).
	HourlyUSD float64
	// SpotHourlyUSD is the corresponding spot-market rate (~70% below
	// on-demand, the era's typical discount). Spot capacity is revocable:
	// see SpotProcess.
	SpotHourlyUSD float64
	// SpeedFactor scales trial throughput relative to m4.4xlarge = 1:
	// larger instances run more trials concurrently.
	SpeedFactor float64
}

// SpecFor returns the instance's specification.
func SpecFor(t InstanceType) (Spec, error) {
	switch t {
	case M44XLarge:
		return Spec{VCPUs: 16, MemoryGB: 64, HourlyUSD: 0.80, SpotHourlyUSD: 0.24, SpeedFactor: 1.0}, nil
	case M512XLarge:
		return Spec{VCPUs: 48, MemoryGB: 192, HourlyUSD: 2.304, SpotHourlyUSD: 0.6912, SpeedFactor: 2.6}, nil
	case M524XLarge:
		return Spec{VCPUs: 96, MemoryGB: 384, HourlyUSD: 4.608, SpotHourlyUSD: 1.3824, SpeedFactor: 4.8}, nil
	default:
		return Spec{}, fmt.Errorf("ec2: unknown instance %v", t)
	}
}

// All returns the Figure 1 instance set.
func All() []InstanceType {
	return []InstanceType{M44XLarge, M512XLarge, M524XLarge}
}

// TrialCount returns the grid size of an exhaustive exploration of
// numParams parameters at valuesPerParam values each.
func TrialCount(numParams, valuesPerParam int) (int, error) {
	if numParams < 1 || valuesPerParam < 1 {
		return 0, fmt.Errorf("ec2: invalid grid %dx%d", numParams, valuesPerParam)
	}
	return int(math.Pow(float64(valuesPerParam), float64(numParams))), nil
}

// TuningHours estimates the wall-clock hours to exhaustively tune
// numParams parameters (3 values each) on the instance, given the
// single-trial duration in seconds on the reference instance.
func TuningHours(t InstanceType, numParams int, trialSeconds float64) (float64, error) {
	spec, err := SpecFor(t)
	if err != nil {
		return 0, err
	}
	trials, err := TrialCount(numParams, 3)
	if err != nil {
		return 0, err
	}
	if trialSeconds <= 0 {
		return 0, fmt.Errorf("ec2: invalid trial duration %v", trialSeconds)
	}
	return float64(trials) * trialSeconds / spec.SpeedFactor / 3600, nil
}

// TuningCostUSD estimates the on-demand dollar cost of the exploration.
func TuningCostUSD(t InstanceType, numParams int, trialSeconds float64) (float64, error) {
	hours, err := TuningHours(t, numParams, trialSeconds)
	if err != nil {
		return 0, err
	}
	spec, _ := SpecFor(t)
	return hours * spec.HourlyUSD, nil
}
