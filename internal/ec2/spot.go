package ec2

// The spot-revocation process: the market-side half of the revocable
// cluster plane. Each spot node owns an independent Poisson stream of
// revocation instants (exponentially distributed gaps, the standard
// memoryless interruption model), derived from a per-node xrand stream so
// the sequence is deterministic for a (seed, node) pair and — crucially —
// independent of when and how often the scheduler queries it. The
// discrete-event engine consumes the stream lazily: it only asks for the
// next revocation after the current simulated instant, so a node that
// never hosts work never materialises more than one pending event.

import (
	"math"
	"sort"

	"pipetune/internal/xrand"
)

// DefaultOutageSeconds is how long a revoked node stays down before its
// replacement joins the pool: the spot market's two-minute interruption
// notice plus provisioning of a substitute instance.
const DefaultOutageSeconds = 120.0

// spotNode is one node's memoised revocation sequence.
type spotNode struct {
	rate  float64 // revocations per simulated hour; <= 0 = never revoked
	rng   *xrand.Source
	times []float64 // ascending revocation instants generated so far
}

// SpotProcess generates deterministic per-node revocation instants. It is
// not safe for concurrent use — it belongs to a single discrete-event
// simulation, which is single-threaded by construction.
type SpotProcess struct {
	outage float64
	nodes  []spotNode
}

// NewSpotProcess builds the process for a fleet: ratesPerHour[i] is node
// i's revocation rate (0 for on-demand nodes), outageSeconds the
// replacement delay after each revocation (<= 0 selects
// DefaultOutageSeconds). Every node's stream is seeded independently from
// the master seed, so adding nodes never perturbs existing sequences.
func NewSpotProcess(seed uint64, ratesPerHour []float64, outageSeconds float64) *SpotProcess {
	if outageSeconds <= 0 {
		outageSeconds = DefaultOutageSeconds
	}
	p := &SpotProcess{outage: outageSeconds, nodes: make([]spotNode, len(ratesPerHour))}
	for i, r := range ratesPerHour {
		p.nodes[i].rate = r
		if r > 0 {
			p.nodes[i].rng = xrand.New(seed ^ (uint64(i)+1)*0x9e3779b97f4a7c15)
		}
	}
	return p
}

// NextAfter returns node's first revocation instant strictly after t, or
// +Inf when the node is never revoked. The memoised sequence makes the
// answer independent of query order: asking about a later t first still
// yields the same instants for earlier queries.
func (p *SpotProcess) NextAfter(node int, t float64) float64 {
	if node < 0 || node >= len(p.nodes) {
		return math.Inf(1)
	}
	n := &p.nodes[node]
	if n.rate <= 0 {
		return math.Inf(1)
	}
	meanGap := 3600 / n.rate
	last := 0.0
	if len(n.times) > 0 {
		last = n.times[len(n.times)-1]
	}
	for last <= t {
		last += n.rng.ExpFloat64() * meanGap
		n.times = append(n.times, last)
	}
	i := sort.SearchFloat64s(n.times, t)
	for i < len(n.times) && n.times[i] <= t {
		i++
	}
	return n.times[i]
}

// OutageSeconds is the replacement delay after a revocation.
func (p *SpotProcess) OutageSeconds() float64 { return p.outage }
