// Package simtime provides the virtual clock and discrete-event engine that
// every experiment runs on. The paper reports wall-clock seconds measured on
// a physical cluster; this reproduction replaces the host clock with
// simulated seconds so that experiments are fast, deterministic and
// independent of the machine running them.
//
// The Engine is a classic event-queue simulator: callbacks scheduled at
// absolute virtual times execute in time order, with FIFO tie-breaking so
// runs are reproducible.
package simtime

import (
	"container/heap"
	"errors"
)

// ErrStopped is returned by Run when the engine was stopped explicitly
// before the event queue drained.
var ErrStopped = errors.New("simtime: engine stopped")

// Clock tracks virtual time in seconds. The zero value starts at t=0.
type Clock struct {
	now float64
}

// Now returns the current virtual time in seconds.
func (c *Clock) Now() float64 { return c.now }

// Advance moves the clock forward by d seconds. Negative advances are
// ignored: virtual time never flows backwards.
func (c *Clock) Advance(d float64) {
	if d > 0 {
		c.now += d
	}
}

// Set jumps the clock to t if t is in the future.
func (c *Clock) Set(t float64) {
	if t > c.now {
		c.now = t
	}
}

// event is one scheduled callback.
type event struct {
	at   float64
	prio int    // same-instant ordering class; lower dispatches first
	seq  uint64 // insertion order, breaks remaining ties deterministically
	fn   func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	if q[i].prio != q[j].prio {
		return q[i].prio < q[j].prio
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event simulator. It is not safe for
// concurrent use: all scheduling must happen from the goroutine calling Run
// (typically from within event callbacks).
type Engine struct {
	clock   Clock
	queue   eventQueue
	nextSeq uint64
	stopped bool
}

// NewEngine returns an engine with virtual time at 0.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.clock.Now() }

// Pending returns the number of events still queued.
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule queues fn to run after delay seconds of virtual time. Negative
// delays are clamped to zero (the event runs "now", after already-queued
// events at the current time).
func (e *Engine) Schedule(delay float64, fn func()) {
	if delay < 0 {
		delay = 0
	}
	e.ScheduleAt(e.clock.Now()+delay, fn)
}

// ScheduleAt queues fn at absolute virtual time t. Times in the past are
// clamped to the current time.
func (e *Engine) ScheduleAt(t float64, fn func()) {
	e.ScheduleAtPrio(t, 0, fn)
}

// ScheduleAtPrio queues fn at absolute virtual time t within an ordering
// class: when several events share an instant, lower prio dispatches first
// (FIFO within a class). Queueing simulators use this to process departures
// (prio < 0, freeing resources) before same-instant arrivals (prio 0), the
// convention that keeps admission decisions independent of insertion order.
func (e *Engine) ScheduleAtPrio(t float64, prio int, fn func()) {
	if t < e.clock.Now() {
		t = e.clock.Now()
	}
	ev := &event{at: t, prio: prio, seq: e.nextSeq, fn: fn}
	e.nextSeq++
	heap.Push(&e.queue, ev)
}

// Stop makes Run return ErrStopped before dispatching the next event.
func (e *Engine) Stop() { e.stopped = true }

// Run dispatches events in time order until the queue is empty or until
// virtual time would exceed until (pass a negative value for no horizon).
// It returns ErrStopped if Stop was called, otherwise nil.
func (e *Engine) Run(until float64) error {
	e.stopped = false
	for len(e.queue) > 0 {
		if e.stopped {
			return ErrStopped
		}
		next := e.queue[0]
		if until >= 0 && next.at > until {
			e.clock.Set(until)
			return nil
		}
		heap.Pop(&e.queue)
		e.clock.Set(next.at)
		next.fn()
	}
	return nil
}

// RunAll dispatches every queued event with no time horizon.
func (e *Engine) RunAll() error { return e.Run(-1) }
