package simtime

import (
	"testing"
)

func TestClockAdvance(t *testing.T) {
	var c Clock
	c.Advance(5)
	c.Advance(2.5)
	if c.Now() != 7.5 {
		t.Fatalf("clock = %v, want 7.5", c.Now())
	}
	c.Advance(-3)
	if c.Now() != 7.5 {
		t.Fatalf("negative advance moved clock to %v", c.Now())
	}
	c.Set(4)
	if c.Now() != 7.5 {
		t.Fatalf("Set into the past moved clock to %v", c.Now())
	}
	c.Set(10)
	if c.Now() != 10 {
		t.Fatalf("Set = %v, want 10", c.Now())
	}
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(3, func() { order = append(order, 3) })
	e.Schedule(1, func() { order = append(order, 1) })
	e.Schedule(2, func() { order = append(order, 2) })
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("dispatch order = %v", order)
	}
	if e.Now() != 3 {
		t.Fatalf("final time = %v, want 3", e.Now())
	}
}

func TestEngineFIFOTieBreak(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Schedule(1, func() { order = append(order, "a") })
	e.Schedule(1, func() { order = append(order, "b") })
	e.Schedule(1, func() { order = append(order, "c") })
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if got := order[0] + order[1] + order[2]; got != "abc" {
		t.Fatalf("tie-break order = %q, want abc", got)
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var times []float64
	e.Schedule(1, func() {
		times = append(times, e.Now())
		e.Schedule(2, func() { times = append(times, e.Now()) })
	})
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(times) != 2 || times[0] != 1 || times[1] != 3 {
		t.Fatalf("nested times = %v, want [1 3]", times)
	}
}

func TestEngineHorizon(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.Schedule(1, func() { fired++ })
	e.Schedule(10, func() { fired++ })
	if err := e.Run(5); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("fired = %d events before horizon, want 1", fired)
	}
	if e.Now() != 5 {
		t.Fatalf("clock after horizon = %v, want 5", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
	// Resuming past the horizon dispatches the rest.
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if fired != 2 || e.Now() != 10 {
		t.Fatalf("after resume fired=%d now=%v", fired, e.Now())
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.Schedule(1, func() {
		fired++
		e.Stop()
	})
	e.Schedule(2, func() { fired++ })
	if err := e.RunAll(); err != ErrStopped {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	e := NewEngine()
	ran := false
	e.Schedule(5, func() {
		e.Schedule(-10, func() {
			if e.Now() != 5 {
				t.Errorf("clamped event ran at %v, want 5", e.Now())
			}
			ran = true
		})
	})
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("clamped event never ran")
	}
}

func TestScheduleAtPastClamped(t *testing.T) {
	e := NewEngine()
	var at float64 = -1
	e.Schedule(3, func() {
		e.ScheduleAt(1, func() { at = e.Now() })
	})
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if at != 3 {
		t.Fatalf("past-scheduled event ran at %v, want 3", at)
	}
}

func TestManyEventsDeterministic(t *testing.T) {
	run := func() []float64 {
		e := NewEngine()
		var out []float64
		for i := 0; i < 500; i++ {
			d := float64((i * 7919) % 101)
			e.Schedule(d, func() { out = append(out, e.Now()) })
		}
		if err := e.RunAll(); err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("runs differ in length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %v vs %v", i, a[i], b[i])
		}
		if i > 0 && a[i] < a[i-1] {
			t.Fatalf("time went backwards: %v after %v", a[i], a[i-1])
		}
	}
}

func TestScheduleAtPrioOrdersSameInstant(t *testing.T) {
	e := NewEngine()
	var order []string
	e.ScheduleAt(10, func() { order = append(order, "arrival") })
	e.ScheduleAtPrio(10, -1, func() { order = append(order, "completion") })
	e.ScheduleAtPrio(10, -2, func() { order = append(order, "resize") })
	e.ScheduleAtPrio(10, -1, func() { order = append(order, "completion2") })
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	want := []string{"resize", "completion", "completion2", "arrival"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("same-instant order %v, want %v", order, want)
		}
	}
}
