// Package pipetune is a from-scratch Go implementation of PipeTune
// ("PipeTune: Pipeline Parallelism of Hyper and System Parameters Tuning
// for Deep Learning Clusters", Rocha et al., ACM/IFIP Middleware 2020).
//
// PipeTune is a middleware between a hyperparameter-tuning library and a
// training framework: while the usual search explores hyperparameters
// across trials, PipeTune tunes *system* parameters (cores, memory) inside
// each trial at epoch granularity — profiling the first epoch with hardware
// performance counters, consulting a k-means ground-truth database of
// previously seen workloads, and probing configurations epoch-by-epoch on a
// miss. See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured comparison.
//
// The facade wires the substrates together:
//
//	sys, err := pipetune.New(pipetune.WithSeed(42))
//	spec := sys.JobSpec(pipetune.Workload{Model: pipetune.LeNet5, Dataset: pipetune.MNIST})
//	res, err := sys.RunPipeTune(spec)
//
// Baselines (Tune V1/V2 of the paper's §4) run through the same facade via
// RunBaseline. Everything is deterministic under a fixed seed and runs on
// simulated time: trials flow through an event-driven discrete-event
// scheduler (internal/sched) whose placement policy is selectable with
// WithScheduler. See DESIGN.md for the scheduler architecture and
// EXPERIMENTS.md for the paper-versus-measured comparison.
package pipetune

import (
	"context"
	"errors"
	"fmt"
	"io"

	"pipetune/internal/admission"
	"pipetune/internal/cluster"
	"pipetune/internal/core"
	"pipetune/internal/dataset"
	"pipetune/internal/exec"
	"pipetune/internal/gt"
	"pipetune/internal/metrics"
	"pipetune/internal/params"
	"pipetune/internal/sched"
	"pipetune/internal/trainer"
	"pipetune/internal/tune"
	"pipetune/internal/workload"
)

// Re-exported workload vocabulary (Table 3).
type (
	// Workload pairs a model with a dataset.
	Workload = workload.Workload
	// Model is a neural-network architecture (or Rodinia kernel).
	Model = workload.Model
	// Dataset is an input corpus.
	Dataset = workload.Dataset
	// WorkloadType is the paper's Type-I/II/III taxonomy.
	WorkloadType = workload.Type
)

// Models.
const (
	LeNet5   = workload.LeNet5
	CNN      = workload.CNN
	LSTM     = workload.LSTM
	Jacobi   = workload.Jacobi
	SPKMeans = workload.SPKMeans
	BFS      = workload.BFS
)

// Datasets.
const (
	MNIST        = workload.MNIST
	FashionMNIST = workload.FashionMNIST
	News20       = workload.News20
	Rodinia      = workload.Rodinia
)

// Workload types.
const (
	TypeI   = workload.TypeI
	TypeII  = workload.TypeII
	TypeIII = workload.TypeIII
)

// Re-exported parameter types (§7.1.3, §7.1.4).
type (
	// Hyper is the hyperparameter tuple.
	Hyper = params.Hyper
	// SysConfig is the system-parameter tuple (cores, memory).
	SysConfig = params.SysConfig
	// Space is a discrete search space.
	Space = params.Space
	// Dimension is one tunable axis of a Space.
	Dimension = params.Dimension
	// Assignment maps dimension names to values.
	Assignment = params.Assignment
)

// Re-exported tuning types.
type (
	// JobSpec describes one hyperparameter-tuning job.
	JobSpec = tune.JobSpec
	// JobResult is a finished job: best trial, all trials, tuning time,
	// energy, progress curve.
	JobResult = tune.JobResult
	// TrialRecord is one evaluated trial.
	TrialRecord = tune.TrialRecord
	// Mode selects the baseline behaviour (V1/V2).
	Mode = tune.Mode
	// Objective is the score a job maximises.
	Objective = tune.Objective
)

// Baseline modes (§4) and objectives (§5.1).
const (
	ModeV1                  = tune.ModeV1
	ModeV2                  = tune.ModeV2
	MaximizeAccuracy        = tune.MaximizeAccuracy
	MaximizeAccuracyPerTime = tune.MaximizeAccuracyPerTime
)

// Catalog returns the seven Table 3 workloads.
func Catalog() []Workload { return workload.Catalog() }

// WorkloadsOfType filters the catalog.
func WorkloadsOfType(types ...WorkloadType) []Workload { return workload.OfType(types...) }

// DefaultHyper returns the §3 baseline hyperparameters.
func DefaultHyper() Hyper { return params.DefaultHyper() }

// DefaultSysConfig returns the fixed configuration V1 trials run with.
func DefaultSysConfig() SysConfig { return params.DefaultSysConfig() }

// PaperHyperSpace returns the paper's hyperparameter grid.
func PaperHyperSpace() Space { return params.PaperHyperSpace() }

// PaperSystemSpace returns the paper's system-parameter grid.
func PaperSystemSpace() Space { return params.PaperSystemSpace() }

// System is a fully wired PipeTune deployment: the training substrate, a
// cluster, the baseline tuner and the PipeTune middleware with its
// persistent ground-truth database.
//
// A System is safe for concurrent use after New returns: RunPipeTune,
// RunBaseline and their context variants may be called from multiple
// goroutines over the same instance (the pipetuned service does exactly
// this), sharing one ground-truth database — each concurrent caller's
// trials feed it and benefit from it. Options must not be applied
// concurrently with runs.
type System struct {
	trainer  *trainer.Runner
	cluster  *cluster.Cluster
	tuner    *tune.Runner
	pipetune *core.PipeTune
	seed     uint64
	err      error // first option error; surfaced by New
}

// Option customises a System.
type Option func(*System)

// WithSeed fixes the master seed (default 1).
func WithSeed(seed uint64) Option {
	return func(s *System) { s.seed = seed }
}

// WithCluster replaces the default 4-node testbed cluster. An invalid node
// specification fails pipetune.New rather than silently keeping the
// default cluster.
func WithCluster(numNodes, coresPerNode, memGBPerNode int) Option {
	return func(s *System) {
		c, err := cluster.New(numNodes, cluster.NodeSpec{Cores: coresPerNode, MemoryGB: memGBPerNode})
		if err != nil {
			s.fail(fmt.Errorf("pipetune: WithCluster: %w", err))
			return
		}
		s.cluster = c
	}
}

// NodeClass describes one homogeneous group of cluster nodes — shape,
// count, relative speed, pricing and spot revocability. Re-exported from
// internal/cluster for WithClusterClasses.
type NodeClass = cluster.NodeClass

// WithClusterClasses replaces the cluster with a heterogeneous one built
// from node classes (shapes, speeds, prices, spot capacity). Cost-aware
// placement policies (SchedCheapest, SchedPerfPerDollar) price trials
// against these classes, and spot classes with a revocation rate feed the
// scheduler's deterministic revocation process. An invalid class set
// fails pipetune.New.
func WithClusterClasses(classes ...NodeClass) Option {
	return func(s *System) {
		c, err := cluster.NewClasses(classes)
		if err != nil {
			s.fail(fmt.Errorf("pipetune: WithClusterClasses: %w", err))
			return
		}
		s.cluster = c
	}
}

// EC2Classes builds the paper's Figure 1 EC2 fleet as node classes:
// nodesPerShape nodes of each of the three instance shapes, with
// spotFraction of each shape's nodes (rounded) bought on the spot market
// at the spot discount and revoked at revocationsPerHour per node.
// spotFraction 0 is an all-on-demand fleet.
func EC2Classes(nodesPerShape int, spotFraction, revocationsPerHour float64) ([]NodeClass, error) {
	return cluster.EC2Fleet(nodesPerShape, spotFraction, revocationsPerHour)
}

// Trial placement policies accepted by WithScheduler.
const (
	SchedFIFO     = sched.NameFIFO
	SchedSJF      = sched.NameSJF
	SchedBackfill = sched.NameBackfill
	// SchedCheapest and SchedPerfPerDollar are FIFO admission with a
	// cost-aware class choice on heterogeneous clusters: lowest predicted
	// dollar cost, or best speed per dollar. On single-class clusters both
	// degrade to exact FIFO.
	SchedCheapest      = sched.NameCheapest
	SchedPerfPerDollar = sched.NamePerfPerDollar
)

// Job dispatch policies of the pipetuned service (internal/admission):
// how the daemon arbitrates *whole tuning jobs* across tenants, the
// job-granularity analogue of the trial policies above. Accepted by
// service.Config.JobPolicy and the pipetuned -job-policy flag.
const (
	// JobPolicyFIFO dispatches in global submission order (default; exact
	// legacy single-queue schedule).
	JobPolicyFIFO = string(admission.PolicyFIFO)
	// JobPolicyFair shares workers by weighted deficit round robin over
	// per-tenant queues.
	JobPolicyFair = string(admission.PolicyFair)
	// JobPolicySJF dispatches the smallest cost-model estimate first,
	// with a starvation guard.
	JobPolicySJF = string(admission.PolicySJF)
)

// WithScheduler selects the trial placement policy of the event-driven
// scheduler for both the baselines and PipeTune: SchedFIFO (the paper's
// order, default), SchedSJF (shortest job first) or SchedBackfill
// (conservative EASY backfill). An unknown name fails pipetune.New.
func WithScheduler(policy string) Option {
	return func(s *System) {
		p, err := sched.ByName(policy)
		if err != nil {
			s.fail(fmt.Errorf("pipetune: WithScheduler: %w", err))
			return
		}
		s.tuner.Policy = p
		s.pipetune.Policy = p
	}
}

// WithPlacementPolicy is WithScheduler under its cost-aware name: it
// selects how trials are placed on the cluster, including which node
// class they land on when the policy is class-aware.
func WithPlacementPolicy(policy string) Option { return WithScheduler(policy) }

// fail records the first option error.
func (s *System) fail(err error) {
	if s.err == nil {
		s.err = err
	}
}

// WithSingleNode switches to the paper's single-node Type-III testbed.
func WithSingleNode() Option {
	return func(s *System) { s.cluster = cluster.SingleNode() }
}

// WithCorpusSize controls the synthetic corpus size (train/test samples).
func WithCorpusSize(train, test int) Option {
	return func(s *System) {
		if train > 0 && test > 0 {
			s.trainer.Data = dataset.Config{TrainSize: train, TestSize: test}
		}
	}
}

// WithLoad sets the contention multiplier (co-located jobs).
func WithLoad(load float64) Option {
	return func(s *System) { s.trainer.Load = load }
}

// WithTrialCache attaches a trial prefix cache to the System's trainer:
// trials sharing a training prefix — same workload, corpus, training-
// relevant hyperparameters and seed; the system configuration never
// enters the key — replay or resume cached SGD instead of recomputing
// it, bit-identically. The cache is bounded to maxBytes of resident
// trajectory and checkpoint state (<= 0 selects the default budget) with
// LRU eviction. Remote execution backends propagate the budget to
// workers, which keep worker-local caches under the same keys.
func WithTrialCache(maxBytes int64) Option {
	return func(s *System) { s.trainer.Cache = trainer.NewTrialCache(maxBytes) }
}

// WithTrainParallelism bounds the deterministic intra-trial kernel
// parallelism: each trial's forward/backward compute may shard
// per-sample-independent work across up to n goroutines. Results are
// bit-identical at every degree — cross-sample accumulations stay
// serial in sample order — so the knob trades wall-clock for cores
// without perturbing trials, cache keys or checkpoints. n <= 1 keeps
// the hot loop single-threaded. Remote execution backends ship the
// degree to workers with each assignment.
func WithTrainParallelism(n int) Option {
	return func(s *System) { s.trainer.Parallelism = n }
}

// WithProbes replaces the system-configuration probe grid (§5.6).
func WithProbes(probes []SysConfig) Option {
	return func(s *System) {
		if len(probes) > 0 {
			cp := make([]SysConfig, len(probes))
			copy(cp, probes)
			s.pipetune.Probes = cp
		}
	}
}

// WithEnergyObjective makes PipeTune's probing minimise energy instead of
// epoch runtime.
func WithEnergyObjective() Option {
	return func(s *System) { s.pipetune.Optimize = core.MinimizeEnergy }
}

// WithNearestNeighborSimilarity swaps the ground truth's similarity
// function from the paper's default k-means to per-profile nearest
// neighbour (§5.4 notes the function is pluggable). threshold scales the
// mean nearest-neighbour distance that bounds confident matches.
func WithNearestNeighborSimilarity(threshold float64) Option {
	return func(s *System) {
		cfg := gt.DefaultConfig()
		cfg.NewSimilarity = func(uint64) gt.Similarity {
			return gt.NewNearestNeighborSimilarity(threshold)
		}
		s.pipetune.GT = gt.NewSharded(cfg, s.seed)
	}
}

// ExecBackend is the pluggable execution plane trial bodies compute on:
// the default in-process pool (exec.Local — the pre-refactor behaviour,
// bit-identical) or a remote pipetune-worker fleet (exec.Remote).
type ExecBackend = exec.Backend

// WithExecBackend selects where trial bodies compute. A nil backend
// keeps the default local pool.
func WithExecBackend(b ExecBackend) Option {
	return func(s *System) {
		if b != nil {
			s.tuner.Exec = b
		}
	}
}

// SetExecBackend swaps the execution backend after construction. The
// service layer uses this to wire the remote worker fleet once it is
// constructed; it must not be called concurrently with runs. A nil
// backend restores the default local pool.
func (s *System) SetExecBackend(b ExecBackend) { s.tuner.Exec = b }

// GroundTruthStore is the pluggable ground-truth database behind
// PipeTune's cross-job reuse (§5.4): the default sharded store, the
// classic monolith, or the daemon's WAL-backed persistent wrapper.
type GroundTruthStore = gt.Store

// WithGroundTruthStore replaces the System's ground-truth store — e.g. a
// pre-warmed store shared across Systems, the classic monolithic
// implementation, or a custom Store. A nil store fails pipetune.New.
func WithGroundTruthStore(store GroundTruthStore) Option {
	return func(s *System) {
		if store == nil {
			s.fail(errors.New("pipetune: WithGroundTruthStore: nil store"))
			return
		}
		s.pipetune.GT = store
	}
}

// New builds a wired System.
func New(opts ...Option) (*System, error) {
	s := &System{
		trainer: trainer.NewRunner(),
		cluster: cluster.Paper(),
		seed:    1,
	}
	// Order matters: construct PipeTune after defaults so that options can
	// override both. Run options twice is unnecessary — options that touch
	// pipetune fields are applied after construction below.
	s.tuner = tune.NewRunner(s.trainer, s.cluster)
	s.pipetune = core.New(s.tuner, s.seed)
	for _, opt := range opts {
		opt(s)
	}
	if s.err != nil {
		return nil, s.err
	}
	// Re-wire in case the cluster was swapped by an option.
	s.tuner.Cluster = s.cluster
	if s.pipetune.GT == nil {
		return nil, errors.New("pipetune: ground truth not initialised")
	}
	return s, nil
}

// JobSpec assembles a standard tuning job for a workload: the paper's
// hyperparameter space, HyperBand scheduling and accuracy objective.
func (s *System) JobSpec(w Workload) JobSpec {
	h := params.DefaultHyper()
	h.Epochs = 6
	return JobSpec{
		Workload:    w,
		Mode:        ModeV1,
		Objective:   MaximizeAccuracy,
		HyperSpace:  PaperHyperSpace(),
		SystemSpace: PaperSystemSpace(),
		BaseHyper:   h,
		BaseSys:     DefaultSysConfig(),
		Seed:        s.seed,
	}
}

// RunBaseline executes a job under plain Tune semantics (ModeV1 or ModeV2
// per spec.Mode).
func (s *System) RunBaseline(spec JobSpec) (*JobResult, error) {
	return s.tuner.RunJob(spec)
}

// RunBaselineCtx is RunBaseline with cancellation: a cancelled context
// aborts the job at the next trial boundary and returns an error
// satisfying errors.Is(err, ctx.Err()).
func (s *System) RunBaselineCtx(ctx context.Context, spec JobSpec) (*JobResult, error) {
	return s.tuner.RunJobCtx(ctx, spec)
}

// RunPipeTune executes a job under the PipeTune middleware: pipelined
// system-parameter tuning inside every trial, backed by the System's
// persistent ground-truth database.
func (s *System) RunPipeTune(spec JobSpec) (*JobResult, error) {
	return s.pipetune.RunJob(spec)
}

// RunPipeTuneCtx is RunPipeTune with cancellation. Trials that completed
// before the cancellation have already fed the ground-truth database and
// stay there; the job result itself is discarded.
func (s *System) RunPipeTuneCtx(ctx context.Context, spec JobSpec) (*JobResult, error) {
	return s.pipetune.RunJobCtx(ctx, spec)
}

// Bootstrap warm-starts the ground-truth database by profiling the given
// workloads under the probe grid (§7.2).
func (s *System) Bootstrap(workloads []Workload) error {
	return s.pipetune.Bootstrap(workloads, s.seed+0x9e37)
}

// GroundTruthStats reports the similarity database's size and hit/miss
// counters.
func (s *System) GroundTruthStats() (entries, hits, misses int) {
	hits, misses = s.pipetune.GT.Stats()
	return s.pipetune.GT.Len(), hits, misses
}

// SaveGroundTruth persists the similarity database as JSON.
func (s *System) SaveGroundTruth(w io.Writer) error { return s.pipetune.GT.Save(w) }

// LoadGroundTruth restores a previously saved similarity database.
func (s *System) LoadGroundTruth(r io.Reader) error { return s.pipetune.GT.Load(r) }

// GroundTruth exposes the System's similarity database for sharing with
// service layers (snapshotting, revision tracking, cross-job statistics).
func (s *System) GroundTruth() GroundTruthStore { return s.pipetune.GT }

// SetGroundTruthStore swaps the System's ground-truth store after
// construction. The service layer uses this to wrap the store with WAL
// persistence once it knows the state directory; it must not be called
// concurrently with runs.
func (s *System) SetGroundTruthStore(store GroundTruthStore) {
	if store != nil {
		s.pipetune.GT = store
	}
}

// InstrumentTrainer registers the trainer substrate's metric families on
// reg: the tsdb write-error counter and, when WithTrialCache is enabled,
// the prefix cache's hit/miss/residency series. The service layer wires
// this when metrics are enabled; library callers may too. Call before
// running jobs.
func (s *System) InstrumentTrainer(reg *metrics.Registry) { s.trainer.InstrumentMetrics(reg) }

// TrainerCacheStats snapshots the trial prefix cache's counters; the zero
// value when WithTrialCache is not enabled.
func (s *System) TrainerCacheStats() trainer.CacheStats {
	if s.trainer.Cache == nil {
		return trainer.CacheStats{}
	}
	return s.trainer.Cache.Stats()
}

// PredictTrialDuration estimates a trial's simulated duration without
// running it (used for capacity planning and the multi-tenant examples).
func (s *System) PredictTrialDuration(w Workload, h Hyper, sys SysConfig) (float64, error) {
	return s.trainer.PredictDuration(w, h, sys)
}

// ClusterClasses reports the cluster's node-class composition for health
// surfaces; empty (nil) on legacy single-class clusters, whose anonymous
// class carries no metadata worth reporting.
func (s *System) ClusterClasses() []cluster.ClassStatus {
	st := s.cluster.Status()
	if len(st) == 1 && st[0].Name == "" {
		return nil
	}
	return st
}

// SpotCounts splits the cluster's nodes into spot and on-demand counts.
func (s *System) SpotCounts() (spot, onDemand int) { return s.cluster.SpotCounts() }

// PlacementPolicyName names the trial placement policy in force
// (WithScheduler / WithPlacementPolicy; "fifo" by default).
func (s *System) PlacementPolicyName() string {
	if s.tuner.Policy == nil {
		return sched.NameFIFO
	}
	return s.tuner.Policy.Name()
}
