package pipetune

// One benchmark per table and figure of the paper's evaluation, plus the
// scheduler regression bench in scheduler_test.go. Each benchmark
// regenerates the artefact end to end and reports its headline quantities
// via b.ReportMetric, so `go test -bench=. -benchmem` doubles as the
// reproduction harness (see EXPERIMENTS.md for the paper-vs-measured
// discussion).

import (
	"testing"

	"pipetune/internal/experiments"
	"pipetune/internal/workload"
)

func benchConfig() experiments.Config {
	return experiments.DefaultConfig()
}

func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure1(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		last := res.Rows[len(res.Rows)-1]
		b.ReportMetric(last.TuningHours, "6param-tuning-hours")
		b.ReportMetric(last.CostUSD, "6param-cost-usd")
	}
}

func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure2(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.EpochStability(), "epoch-cv")
	}
}

func BenchmarkFigure3a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure3a(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		last := res.Rows[len(res.Rows)-1] // batch 1024
		b.ReportMetric(last.AccuracyPct, "b1024-accuracy-pct")
		b.ReportMetric(last.DurationPct, "b1024-duration-pct")
		b.ReportMetric(last.EnergyPct, "b1024-energy-pct")
	}
}

func BenchmarkFigure3bc(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure3bc(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		small, err := res.Row(64, 8)
		if err != nil {
			b.Fatal(err)
		}
		large, err := res.Row(1024, 8)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(small.DurationPct, "b64-8cores-duration-pct")
		b.ReportMetric(large.DurationPct, "b1024-8cores-duration-pct")
	}
}

func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure5(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		positives := 0
		for _, row := range res.Rows {
			if row.RuntimeImpPct > 0 {
				positives++
			}
		}
		b.ReportMetric(float64(positives), "configs-improving-runtime")
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table2(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		v1, _ := res.Row("Tune V1")
		pt, _ := res.Row("PipeTune")
		b.ReportMetric(pt.AccuracyPct, "pipetune-accuracy-pct")
		b.ReportMetric(pt.TuningSecs, "pipetune-tuning-s")
		b.ReportMetric((1-pt.TuningSecs/v1.TuningSecs)*100, "tuning-reduction-pct")
		b.ReportMetric(v1.TrainingSecs/pt.TrainingSecs, "training-speedup-x")
	}
}

func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure8(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Profiles), "profiles-clustered")
		b.ReportMetric(res.Inertia, "inertia")
	}
}

func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure9and10(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		v1, err := res.Curve("Tune V1")
		if err != nil {
			b.Fatal(err)
		}
		pt, err := res.Curve("PipeTune")
		if err != nil {
			b.Fatal(err)
		}
		target := 0.9 * pt.BestAccuracy
		b.ReportMetric(v1.TimeToAccuracy(target)/pt.TimeToAccuracy(target), "convergence-speedup-x")
	}
}

func BenchmarkFigure10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure9and10(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		v1, err := res.Curve("Tune V1")
		if err != nil {
			b.Fatal(err)
		}
		pt, err := res.Curve("PipeTune")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pt.MeanTrialDuration(), "pipetune-mean-trial-s")
		b.ReportMetric(v1.MeanTrialDuration()/pt.MeanTrialDuration(), "trial-speedup-x")
	}
}

func BenchmarkFigure11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure11(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		var v1T, ptT, v1E, ptE float64
		for _, w := range workload.OfType(workload.TypeI, workload.TypeII) {
			v1, err := res.Row(w, experiments.SystemV1)
			if err != nil {
				b.Fatal(err)
			}
			pt, err := res.Row(w, experiments.SystemPipeTune)
			if err != nil {
				b.Fatal(err)
			}
			v1T += v1.TuningSecs
			ptT += pt.TuningSecs
			v1E += v1.TuningKJ
			ptE += pt.TuningKJ
		}
		b.ReportMetric((1-ptT/v1T)*100, "tuning-reduction-pct")
		b.ReportMetric((1-ptE/v1E)*100, "energy-reduction-pct")
	}
}

func BenchmarkFigure12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure12(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		var v1T, ptT float64
		for _, w := range workload.OfType(workload.TypeIII) {
			v1, err := res.Row(w, experiments.SystemV1)
			if err != nil {
				b.Fatal(err)
			}
			pt, err := res.Row(w, experiments.SystemPipeTune)
			if err != nil {
				b.Fatal(err)
			}
			v1T += v1.TuningSecs
			ptT += pt.TuningSecs
		}
		b.ReportMetric((1-ptT/v1T)*100, "tuning-reduction-pct")
	}
}

func BenchmarkFigure13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure13(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		v1, err := res.Row("all", experiments.SystemV1)
		if err != nil {
			b.Fatal(err)
		}
		pt, err := res.Row("all", experiments.SystemPipeTune)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric((1-pt.MeanResponse/v1.MeanResponse)*100, "response-reduction-pct")
	}
}

func BenchmarkFigure14(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure14(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		v1, err := res.Row("all", experiments.SystemV1)
		if err != nil {
			b.Fatal(err)
		}
		pt, err := res.Row("all", experiments.SystemPipeTune)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric((1-pt.MeanResponse/v1.MeanResponse)*100, "response-reduction-pct")
	}
}

func BenchmarkAblationNoGroundTruth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationNoGroundTruth(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		warm, cold := res.Rows[0], res.Rows[1]
		b.ReportMetric((1-warm.MeanTuningS/cold.MeanTuningS)*100, "groundtruth-gain-pct")
		b.ReportMetric(warm.HitRate*100, "warm-hit-rate-pct")
	}
}

func BenchmarkAblationSearchers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationSearchers(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.Searcher == "hyperband" {
				b.ReportMetric(row.BestAccuracy*100, "hyperband-accuracy-pct")
				b.ReportMetric(row.TuningSecs, "hyperband-tuning-s")
			}
		}
	}
}

func BenchmarkAblationThreshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationThreshold(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		loose := res.Rows[len(res.Rows)-1]
		b.ReportMetric(loose.HitRate*100, "loose-hit-rate-pct")
	}
}

func BenchmarkAblationProbeBudget(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationProbeBudget(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		best := res.Rows[0].TuningSecs
		for _, row := range res.Rows {
			if row.TuningSecs < best {
				best = row.TuningSecs
			}
		}
		b.ReportMetric(best, "best-tuning-s")
	}
}

func BenchmarkReuse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Reuse(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if !res.Identical {
			b.Fatal("cached results diverged from uncached")
		}
		b.ReportMetric(res.Speedup, "sweep-speedup-x")
		b.ReportMetric(float64(res.Rows[1].EpochsSaved), "epochs-saved")
	}
}
