// Command pipetuned is the multi-tenant PipeTune tuning daemon: an
// HTTP/JSON job API (package api documents the surface) in front of one
// shared pipetune.System, with a bounded worker pool executing jobs and a
// single ground-truth similarity database shared across every job and
// persisted atomically to disk.
//
// Usage:
//
//	pipetuned [-addr :8080] [-workers 2] [-seed 1] [-gt groundtruth.json]
//	          [-gt-store sharded] [-gt-compact-every 256]
//	          [-gt-snapshot-interval 0] [-queue 64] [-bootstrap]
//	          [-scheduler fifo] [-job-policy fifo]
//	          [-tenant-weight name=w ...]
//	          [-exec-backend local] [-exec-wire binary] [-worker-token secret]
//	          [-worker-heartbeat 2s] [-worker-evict-after 3]
//	          [-metrics-enabled] [-metrics-mirror-interval 10s]
//	          [-pprof-addr localhost:6060]
//
// Trial execution is a pluggable plane: the default -exec-backend=local
// computes every trial body on an in-process pool, while
// -exec-backend=remote fans trial bodies out to a fleet of
// pipetune-worker processes that register with this daemon, lease
// trials over the work API, stream per-epoch observations back (so
// PipeTune's pipelined system tuning still fires mid-trial) and
// heartbeat. A worker silent for -worker-evict-after heartbeats is
// evicted and its leases requeued; results commit at most once. Scale
// out by simply starting more workers:
//
//	pipetuned -exec-backend=remote -worker-token s3cret
//	pipetune-worker -server http://localhost:8080 -token s3cret -capacity 4
//	pipetune-worker -server http://localhost:8080 -token s3cret -capacity 4
//
// Workers speak one of two wire protocols, selected by -exec-wire: the
// default binary is a persistent framed stream per worker (batched
// lease grants, pipelined epoch frames, delta-encoded results — the
// low-overhead production wire); json is the long-poll HTTP/JSON compat
// wire; both mounts the two side by side during a fleet migration. Both
// wires produce byte-identical results. The worker picks its side with
// the matching -wire flag.
//
// -pprof-addr serves net/http/pprof on a separate listener (off by
// default) for profiling the live daemon without exposing the profiling
// surface on the public API port.
//
// The observability plane is on by default: every layer (admission
// queue, job dispatch, ground-truth store and WAL, execution plane,
// worker fleet) publishes into one shared metrics registry, exposed as
// Prometheus text at GET /metrics and as typed JSON at GET /v1/metrics,
// and mirrored into an in-memory time-series database every
// -metrics-mirror-interval. Remote workers ship their local series
// (trial compute time, epochs, stream codec errors) piggybacked on the
// heartbeats they already send; both wires carry them.
// -metrics-enabled=false turns the whole plane off.
//
// Job dispatch across tenants is policy-driven: the default -job-policy
// fifo reproduces the classic submission-order schedule exactly;
// -job-policy fair shares the worker pool by weighted deficit round robin
// over per-tenant queues (weights from repeatable -tenant-weight flags,
// e.g. -tenant-weight research=2 -tenant-weight interns=1); -job-policy
// sjf dispatches the job with the smallest cost-model estimate first,
// with a starvation guard. Submissions bill to the tenant named in the
// request body ("default" when absent).
//
// Submit a job and watch it:
//
//	curl -s -X POST localhost:8080/v1/jobs -d '{"workload":"lenet/mnist"}'
//	curl -s localhost:8080/v1/jobs/job-000001
//	curl -N localhost:8080/v1/jobs/job-000001/events
//
// Ground-truth persistence is write-ahead-logged: every trial's entry is
// appended durably (to <gt>.wal) the moment it lands, and the log is
// compacted into the snapshot after jobs, every -gt-compact-every records,
// on the -gt-snapshot-interval ticker and at shutdown. A crash loses at
// most the un-synced tail of one append; a legacy (pre-WAL)
// groundtruth.json loads unchanged.
//
// On SIGINT/SIGTERM the HTTP server drains, running jobs are cancelled at
// their next trial boundary, and the ground truth takes a final snapshot —
// knowledge accumulated by every tenant survives the restart.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"strconv"
	"strings"
	"time"

	"pipetune"
	"pipetune/internal/cluster"
	"pipetune/internal/exec"
	"pipetune/internal/gt"
	"pipetune/internal/httpserve"
	"pipetune/internal/metrics"
	"pipetune/internal/service"
	"pipetune/internal/trainer"
	"pipetune/internal/tsdb"
)

// weightFlags collects repeatable -tenant-weight name=w flags.
type weightFlags map[string]int

func (w weightFlags) String() string {
	parts := make([]string, 0, len(w))
	for name, weight := range w {
		parts = append(parts, fmt.Sprintf("%s=%d", name, weight))
	}
	return strings.Join(parts, ",")
}

func (w weightFlags) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	if !ok || name == "" {
		return fmt.Errorf("want name=weight, got %q", s)
	}
	n, err := strconv.Atoi(val)
	if err != nil || n < 1 {
		return fmt.Errorf("weight for %q must be a positive integer, got %q", name, val)
	}
	w[name] = n
	return nil
}

// parseNodeClasses turns the -node-classes flag into cluster node classes.
// "ec2" selects the paper's three EC2 shapes (one node each); otherwise
// each comma-separated entry reads name:count:cores:memGB[:speed[:hourlyUSD]].
// spotFraction > 0 splits every class: round(count*fraction) nodes become a
// "<name>-spot" class at a 70% discount, revoked at ratePerHour per node.
func parseNodeClasses(spec string, spotFraction, ratePerHour float64) ([]pipetune.NodeClass, error) {
	if spec == "ec2" {
		return pipetune.EC2Classes(1, spotFraction, ratePerHour)
	}
	if spotFraction < 0 || spotFraction > 1 {
		return nil, fmt.Errorf("spot fraction %v outside [0,1]", spotFraction)
	}
	var out []pipetune.NodeClass
	for _, entry := range strings.Split(spec, ",") {
		parts := strings.Split(strings.TrimSpace(entry), ":")
		if len(parts) < 4 || len(parts) > 6 {
			return nil, fmt.Errorf("entry %q: want name:count:cores:memGB[:speed[:hourlyUSD]]", entry)
		}
		nums := make([]float64, 0, len(parts)-1)
		for _, p := range parts[1:] {
			v, err := strconv.ParseFloat(p, 64)
			if err != nil {
				return nil, fmt.Errorf("entry %q: %w", entry, err)
			}
			nums = append(nums, v)
		}
		nc := pipetune.NodeClass{
			Name:        parts[0],
			Count:       int(nums[0]),
			Spec:        cluster.NodeSpec{Cores: int(nums[1]), MemoryGB: int(nums[2])},
			SpeedFactor: 1,
		}
		if len(nums) > 3 {
			nc.SpeedFactor = nums[3]
		}
		if len(nums) > 4 {
			nc.HourlyUSD = nums[4]
		}
		if spot := int(math.Round(float64(nc.Count) * spotFraction)); spot > 0 {
			sc := nc
			sc.Name += "-spot"
			sc.Count = spot
			sc.HourlyUSD = nc.HourlyUSD * 0.3 // the EC2 fleet's spot discount
			sc.Spot = true
			sc.RevocationsPerHour = ratePerHour
			nc.Count -= spot
			if nc.Count > 0 {
				out = append(out, nc)
			}
			out = append(out, sc)
			continue
		}
		out = append(out, nc)
	}
	return out, nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "pipetuned:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addrFlag      = flag.String("addr", ":8080", "listen address")
		workersFlag   = flag.Int("workers", 2, "concurrently running jobs")
		queueFlag     = flag.Int("queue", 64, "max queued jobs")
		seedFlag      = flag.Uint64("seed", 1, "master seed for jobs that do not set one")
		gtFlag        = flag.String("gt", "groundtruth.json", "ground-truth snapshot path (empty disables persistence; the WAL lives alongside at <path>.wal)")
		gtStoreFlag   = flag.String("gt-store", "sharded", "ground-truth store: sharded (lock-free lookups, per-family shards) or monolith (the classic single-model database)")
		gtCompactFlag = flag.Int("gt-compact-every", 256, "compact the ground-truth WAL into a snapshot every N records")
		gtSnapFlag    = flag.Duration("gt-snapshot-interval", 0, "also compact on this interval (0 disables the ticker)")
		schedFlag     = flag.String("scheduler", pipetune.SchedFIFO, "trial placement policy: fifo, sjf, backfill, cheapest or perf-per-dollar")
		placeFlag     = flag.String("placement", "", "alias of -scheduler under its cost-aware name (takes precedence when set)")
		classesFlag   = flag.String("node-classes", "", "heterogeneous cluster: 'ec2' (the paper's three EC2 shapes, one node each) or a comma-separated list of name:count:cores:memGB[:speed[:hourlyUSD]]")
		spotFlag      = flag.Float64("spot-fraction", 0, "fraction of each node class bought as revocable spot capacity (only with -node-classes; ec2 applies it per shape)")
		revRateFlag   = flag.Float64("spot-revocations-per-hour", 0.5, "per-node Poisson revocation rate for spot capacity")
		jobPolicyFlag = flag.String("job-policy", pipetune.JobPolicyFIFO, "job dispatch policy across tenants: fifo, fair or sjf")
		bootstrapFlag = flag.Bool("bootstrap", false, "warm-start the ground truth by profiling the Table 3 catalog")
		drainFlag     = flag.Duration("drain", httpserve.DefaultShutdownTimeout, "graceful-shutdown drain timeout (HTTP and in-flight remote trials)")
		execFlag      = flag.String("exec-backend", "local", "trial execution backend: local (in-process pool) or remote (pipetune-worker fleet)")
		wireFlag      = flag.String("exec-wire", exec.WireBinary, "work protocol for remote workers: binary (framed stream), json (long-poll compat) or both")
		tokenFlag     = flag.String("worker-token", "", "shared bearer token pipetune-worker processes must present (empty = open)")
		beatFlag      = flag.Duration("worker-heartbeat", 2*time.Second, "heartbeat cadence expected from workers")
		evictFlag     = flag.Int("worker-evict-after", 3, "consecutive missed heartbeats before a worker is evicted and its leases requeued")
		pprofFlag     = flag.String("pprof-addr", "", "serve net/http/pprof on this separate address (empty = off)")
		metricsFlag   = flag.Bool("metrics-enabled", true, "publish the metrics registry at GET /metrics (Prometheus text) and GET /v1/metrics (typed JSON)")
		mirrorFlag    = flag.Duration("metrics-mirror-interval", 10*time.Second, "cadence of the registry mirror into the in-memory time-series DB")
		cacheFlag     = flag.Bool("trial-cache", false, "enable the trial prefix cache: trials sharing a training prefix replay or resume cached SGD bit-identically (remote workers keep local caches of the same budget)")
		cacheBytes    = flag.Int64("trial-cache-bytes", trainer.DefaultCacheBytes, "trial prefix cache byte budget (LRU-evicted; only with -trial-cache)")
		trainParFlag  = flag.Int("train-parallelism", 0, "deterministic intra-trial kernel parallelism: shard each trial's compute across up to N goroutines, bit-identically to serial (<=1 = serial; shipped to remote workers)")
		weights       = weightFlags{}
	)
	flag.Var(weights, "tenant-weight", "fair-share weight as name=w (repeatable; unlisted tenants weigh 1)")
	flag.Parse()

	logger := log.New(os.Stderr, "pipetuned: ", log.LstdFlags)
	var store pipetune.GroundTruthStore
	switch *gtStoreFlag {
	case "sharded":
		store = gt.NewSharded(gt.DefaultConfig(), *seedFlag)
	case "monolith":
		store = gt.NewMonolith(gt.DefaultConfig(), *seedFlag)
	default:
		return fmt.Errorf("unknown -gt-store %q (want sharded or monolith)", *gtStoreFlag)
	}
	var wire string
	switch *wireFlag {
	case exec.WireJSON, exec.WireBinary:
		wire = *wireFlag
	case "both":
		wire = "" // an empty RemoteConfig.Wire mounts both protocols
	default:
		return fmt.Errorf("unknown -exec-wire %q (want binary, json or both)", *wireFlag)
	}
	// One registry for every layer: the service, the admission queue, the
	// ground-truth store and the execution plane all publish into it, so
	// a single /metrics scrape sees the whole daemon.
	var reg *metrics.Registry
	var metricsDB *tsdb.DB
	if *metricsFlag {
		reg = metrics.NewRegistry()
		metricsDB = tsdb.New()
	}
	var remote *exec.Remote
	switch *execFlag {
	case "local":
	case "remote":
		remote = exec.NewRemote(exec.RemoteConfig{
			HeartbeatInterval: *beatFlag,
			MissedHeartbeats:  *evictFlag,
			Token:             *tokenFlag,
			Wire:              wire,
			Metrics:           reg,
			Logf:              logger.Printf,
		})
	default:
		return fmt.Errorf("unknown -exec-backend %q (want local or remote)", *execFlag)
	}
	policy := *schedFlag
	if *placeFlag != "" {
		policy = *placeFlag
	}
	opts := []pipetune.Option{
		pipetune.WithSeed(*seedFlag),
		pipetune.WithScheduler(policy),
		pipetune.WithGroundTruthStore(store),
	}
	if *classesFlag != "" {
		classes, err := parseNodeClasses(*classesFlag, *spotFlag, *revRateFlag)
		if err != nil {
			return fmt.Errorf("-node-classes: %w", err)
		}
		opts = append(opts, pipetune.WithClusterClasses(classes...))
	}
	if *cacheFlag {
		opts = append(opts, pipetune.WithTrialCache(*cacheBytes))
	}
	if *trainParFlag > 1 {
		opts = append(opts, pipetune.WithTrainParallelism(*trainParFlag))
	}
	sys, err := pipetune.New(opts...)
	if err != nil {
		return err
	}
	svc, err := service.New(service.Config{
		System:                sys,
		Workers:               *workersFlag,
		QueueDepth:            *queueFlag,
		GTPath:                *gtFlag,
		CompactEvery:          *gtCompactFlag,
		SnapshotInterval:      *gtSnapFlag,
		JobPolicy:             *jobPolicyFlag,
		TenantWeights:         weights,
		Remote:                remote,
		DrainTimeout:          *drainFlag,
		Metrics:               reg,
		MetricsDB:             metricsDB,
		MetricsMirrorInterval: *mirrorFlag,
		DisableMetrics:        !*metricsFlag,
		Logf:                  logger.Printf,
	})
	if err != nil {
		return err
	}
	if *bootstrapFlag {
		start := time.Now()
		if err := sys.Bootstrap(pipetune.Catalog()); err != nil {
			return err
		}
		entries, _, _ := sys.GroundTruthStats()
		logger.Printf("bootstrap: %d ground-truth entries in %v", entries, time.Since(start).Round(time.Millisecond))
	}

	// The profiling endpoints live on their own listener (and their own
	// mux — never the job API's), so an operator can firewall them
	// separately and profiling can't be reached through the public port.
	if *pprofFlag != "" {
		pm := http.NewServeMux()
		pm.HandleFunc("/debug/pprof/", pprof.Index)
		pm.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pm.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pm.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pm.HandleFunc("/debug/pprof/trace", pprof.Trace)
		ln, err := net.Listen("tcp", *pprofFlag)
		if err != nil {
			return fmt.Errorf("pprof listener: %w", err)
		}
		defer ln.Close()
		logger.Printf("pprof on http://%s/debug/pprof/", ln.Addr())
		go func() {
			if err := http.Serve(ln, pm); err != nil && !errors.Is(err, net.ErrClosed) {
				logger.Printf("pprof server: %v", err)
			}
		}()
	}

	srv := &http.Server{Addr: *addrFlag, Handler: svc.Handler()}
	// Stop the executor BEFORE the listener closes (preShutdown), not via
	// http.Server.RegisterOnShutdown, for two reasons: remote workers
	// must still reach the work API to commit in-flight trials during the
	// execution-plane drain (Shutdown closes listeners before its hooks
	// run), and open SSE streams only end when their job turns terminal,
	// so cancelling jobs must precede the HTTP drain or streaming clients
	// would stall it until the timeout every time.
	err = httpserve.ListenAndServe(context.Background(), srv, *drainFlag, func(addr net.Addr) {
		logger.Printf("serving the tuning API on %s (%d workers, job-policy=%s, exec-backend=%s, gt=%s store=%s)", addr, *workersFlag, *jobPolicyFlag, *execFlag, orNone(*gtFlag), *gtStoreFlag)
		logger.Printf("try  curl -s -X POST localhost%s/v1/jobs -d '{\"workload\":\"lenet/mnist\"}'", httpserve.Port(addr))
		if remote != nil {
			logger.Printf("awaiting workers (wire=%s): pipetune-worker -server http://localhost%s", *wireFlag, httpserve.Port(addr))
		}
	}, svc.Shutdown)
	// Idempotent backstop for the listener-error path, where Serve's
	// preShutdown hook never ran; after a normal drain this returns
	// immediately (sync.Once).
	svc.Shutdown()
	logger.Printf("stopped")
	return err
}

// orNone renders an empty path as "(disabled)" for the startup banner.
func orNone(path string) string {
	if path == "" {
		return "(disabled)"
	}
	return path
}
