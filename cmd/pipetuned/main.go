// Command pipetuned is the multi-tenant PipeTune tuning daemon: an
// HTTP/JSON job API (package api documents the surface) in front of one
// shared pipetune.System, with a bounded worker pool executing jobs and a
// single ground-truth similarity database shared across every job and
// persisted atomically to disk.
//
// Usage:
//
//	pipetuned [-addr :8080] [-workers 2] [-seed 1] [-gt groundtruth.json]
//	          [-queue 64] [-bootstrap] [-scheduler fifo]
//
// Submit a job and watch it:
//
//	curl -s -X POST localhost:8080/v1/jobs -d '{"workload":"lenet/mnist"}'
//	curl -s localhost:8080/v1/jobs/job-000001
//	curl -N localhost:8080/v1/jobs/job-000001/events
//
// On SIGINT/SIGTERM the HTTP server drains, running jobs are cancelled at
// their next trial boundary, and the ground truth takes a final snapshot —
// knowledge accumulated by every tenant survives the restart.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"pipetune"
	"pipetune/internal/httpserve"
	"pipetune/internal/service"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "pipetuned:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addrFlag      = flag.String("addr", ":8080", "listen address")
		workersFlag   = flag.Int("workers", 2, "concurrently running jobs")
		queueFlag     = flag.Int("queue", 64, "max queued jobs")
		seedFlag      = flag.Uint64("seed", 1, "master seed for jobs that do not set one")
		gtFlag        = flag.String("gt", "groundtruth.json", "ground-truth snapshot path (empty disables persistence)")
		schedFlag     = flag.String("scheduler", pipetune.SchedFIFO, "trial placement policy: fifo, sjf or backfill")
		bootstrapFlag = flag.Bool("bootstrap", false, "warm-start the ground truth by profiling the Table 3 catalog")
		drainFlag     = flag.Duration("drain", httpserve.DefaultShutdownTimeout, "graceful-shutdown drain timeout")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "pipetuned: ", log.LstdFlags)
	sys, err := pipetune.New(pipetune.WithSeed(*seedFlag), pipetune.WithScheduler(*schedFlag))
	if err != nil {
		return err
	}
	svc, err := service.New(service.Config{
		System:     sys,
		Workers:    *workersFlag,
		QueueDepth: *queueFlag,
		GTPath:     *gtFlag,
		Logf:       logger.Printf,
	})
	if err != nil {
		return err
	}
	if *bootstrapFlag {
		start := time.Now()
		if err := sys.Bootstrap(pipetune.Catalog()); err != nil {
			return err
		}
		entries, _, _ := sys.GroundTruthStats()
		logger.Printf("bootstrap: %d ground-truth entries in %v", entries, time.Since(start).Round(time.Millisecond))
	}

	srv := &http.Server{Addr: *addrFlag, Handler: svc.Handler()}
	// Stop the executor as part of the HTTP drain, not after it: open SSE
	// streams only end when their job turns terminal, so cancelling jobs
	// must overlap the drain or streaming clients would stall Shutdown
	// until the drain timeout every time.
	srv.RegisterOnShutdown(svc.Shutdown)
	err = httpserve.ListenAndServe(context.Background(), srv, *drainFlag, func(addr net.Addr) {
		logger.Printf("serving the tuning API on %s (%d workers, gt=%s)", addr, *workersFlag, orNone(*gtFlag))
		logger.Printf("try  curl -s -X POST localhost%s/v1/jobs -d '{\"workload\":\"lenet/mnist\"}'", httpserve.Port(addr))
	})
	// Blocks until the RegisterOnShutdown call (if any) has fully finished;
	// also covers the listener-error path where no drain ever ran.
	svc.Shutdown()
	logger.Printf("stopped")
	return err
}

// orNone renders an empty path as "(disabled)" for the startup banner.
func orNone(path string) string {
	if path == "" {
		return "(disabled)"
	}
	return path
}
