// Command pipetune-worker is a trial-execution worker: it registers
// with a pipetuned daemon running -exec-backend=remote, leases trial
// bodies over the work API, computes them on a local trainer substrate
// reproducing the daemon's configuration (so results are bit-identical
// to an in-process run), streams per-epoch observations back — which is
// how PipeTune's pipelined system tuning keeps firing mid-trial — and
// heartbeats.
//
// Usage:
//
//	pipetune-worker -server http://daemon:8080 [-token secret]
//	                [-capacity 1] [-heartbeat 0] [-name host]
//	                [-wire binary]
//
// Capacity is how many trial bodies compute concurrently; start more
// processes (on more machines) to scale the fleet out — the daemon
// requeues leases from any worker that dies, so workers are fully
// disposable. -heartbeat 0 adopts the daemon's advertised cadence.
//
// -wire selects the work protocol and must match what the daemon's
// -exec-wire mounts: binary (default) holds one framed stream over
// which leases are granted in batches and results are delta-encoded;
// json long-polls the HTTP/JSON compat API. Results are byte-identical
// either way.
//
// The worker holds no durable state: killing it outright (SIGKILL, a
// crashed machine) loses nothing — the daemon reassigns its leases
// after the eviction window. SIGINT/SIGTERM stops leasing at once and
// exits after at most one in-flight trial body per capacity slot (a
// trial body is the cancellation granularity, as on the daemon's local
// pool); those bodies' commits can no longer land, so impatient
// operators may simply SIGKILL.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pipetune/internal/exec"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "pipetune-worker:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		serverFlag   = flag.String("server", "http://localhost:8080", "pipetuned base URL")
		tokenFlag    = flag.String("token", "", "shared worker token (must match the daemon's -worker-token)")
		capacityFlag = flag.Int("capacity", 1, "trial bodies computed concurrently")
		beatFlag     = flag.Duration("heartbeat", 0, "heartbeat cadence (0 = daemon-advertised)")
		nameFlag     = flag.String("name", "", "worker label in fleet status (default: hostname)")
		wireFlag     = flag.String("wire", exec.WireBinary, "work protocol: binary (framed stream) or json (long-poll compat)")
		trainParFlag = flag.Int("train-parallelism", 0, "default deterministic kernel parallelism for trial compute when the daemon ships none (bit-identical at every degree; <=1 = serial)")
	)
	flag.Parse()
	if *wireFlag != exec.WireJSON && *wireFlag != exec.WireBinary {
		return fmt.Errorf("unknown -wire %q (want binary or json)", *wireFlag)
	}

	logger := log.New(os.Stderr, "pipetune-worker: ", log.LstdFlags)
	agent := exec.NewAgent(exec.AgentConfig{
		Server:           *serverFlag,
		Token:            *tokenFlag,
		Name:             *nameFlag,
		Capacity:         *capacityFlag,
		Heartbeat:        *beatFlag,
		Wire:             *wireFlag,
		Logf:             logger.Printf,
		TrainParallelism: *trainParFlag,
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	logger.Printf("joining fleet at %s (capacity %d, wire %s)", *serverFlag, *capacityFlag, *wireFlag)
	start := time.Now()
	err := agent.Run(ctx)
	if errors.Is(err, context.Canceled) {
		logger.Printf("stopped after %v", time.Since(start).Round(time.Second))
		return nil
	}
	return err
}
