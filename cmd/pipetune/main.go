// Command pipetune runs one hyperparameter-tuning job under a chosen
// system (pipetune, v1 or v2) and prints the outcome.
//
// Usage:
//
//	pipetune [flags]
//
//	-workload   model/dataset pair, e.g. lenet/mnist (default lenet/mnist)
//	-system     pipetune | v1 | v2 (default pipetune)
//	-seed       master seed (default 42)
//	-epochs     per-trial epoch budget (default 6)
//	-corpus     synthetic corpus size (default 512)
//	-bootstrap  warm-start the ground truth before the job (default true)
//	-gt         path to load/save the ground-truth database (optional)
//	-sched      trial placement policy: fifo | sjf | backfill (default fifo)
//	-trials     print the per-trial table (default false)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pipetune"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "pipetune:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		workloadFlag = flag.String("workload", "lenet/mnist", "model/dataset pair (see Table 3)")
		systemFlag   = flag.String("system", "pipetune", "pipetune | v1 | v2")
		seedFlag     = flag.Uint64("seed", 42, "master seed")
		epochsFlag   = flag.Int("epochs", 6, "per-trial epoch budget")
		corpusFlag   = flag.Int("corpus", 512, "synthetic training corpus size")
		bootFlag     = flag.Bool("bootstrap", true, "warm-start the ground truth")
		gtFlag       = flag.String("gt", "", "ground-truth database file to load and save")
		schedFlag    = flag.String("sched", pipetune.SchedFIFO, "trial placement policy: fifo | sjf | backfill")
		trialsFlag   = flag.Bool("trials", false, "print per-trial details")
	)
	flag.Parse()

	w, err := parseWorkload(*workloadFlag)
	if err != nil {
		return err
	}

	sys, err := pipetune.New(
		pipetune.WithSeed(*seedFlag),
		pipetune.WithCorpusSize(*corpusFlag, *corpusFlag/3+1),
		pipetune.WithScheduler(*schedFlag),
	)
	if err != nil {
		return err
	}

	if *gtFlag != "" {
		if f, err := os.Open(*gtFlag); err == nil {
			loadErr := sys.LoadGroundTruth(f)
			f.Close()
			if loadErr != nil {
				return loadErr
			}
			fmt.Printf("loaded ground truth from %s\n", *gtFlag)
		}
	}

	spec := sys.JobSpec(w)
	spec.BaseHyper.Epochs = *epochsFlag

	var res *pipetune.JobResult
	switch strings.ToLower(*systemFlag) {
	case "pipetune":
		if *bootFlag {
			if err := sys.Bootstrap(pipetune.WorkloadsOfType(w.Type())); err != nil {
				return err
			}
		}
		res, err = sys.RunPipeTune(spec)
	case "v1":
		res, err = sys.RunBaseline(spec)
	case "v2":
		spec.Mode = pipetune.ModeV2
		spec.Objective = pipetune.MaximizeAccuracyPerTime
		res, err = sys.RunBaseline(spec)
	default:
		return fmt.Errorf("unknown system %q (want pipetune, v1 or v2)", *systemFlag)
	}
	if err != nil {
		return err
	}

	fmt.Printf("workload:        %s (%s)\n", w.Name(), w.Type())
	fmt.Printf("system:          %s\n", *systemFlag)
	fmt.Printf("trials:          %d\n", len(res.Trials))
	fmt.Printf("best accuracy:   %.2f%%\n", res.Best.Result.Accuracy*100)
	fmt.Printf("best hyper:      %s\n", res.Best.Hyper)
	fmt.Printf("final system:    %s\n", res.Best.Result.FinalSys)
	fmt.Printf("training time:   %.1f s (simulated)\n", res.Best.Result.Duration)
	fmt.Printf("tuning time:     %.1f s (simulated)\n", res.TuningTime)
	fmt.Printf("tuning energy:   %.1f kJ\n", res.TotalEnergy/1000)
	if strings.EqualFold(*systemFlag, "pipetune") {
		entries, hits, misses := sys.GroundTruthStats()
		fmt.Printf("ground truth:    %d entries, %d hits, %d misses\n", entries, hits, misses)
	}

	if *trialsFlag {
		fmt.Printf("\n%-5s %-9s %-38s %-10s %-10s\n", "id", "budget", "hyper", "acc [%]", "dur [s]")
		for _, rec := range res.Trials {
			fmt.Printf("%-5d %-9.2f %-38s %-10.2f %-10.1f\n",
				rec.ID, rec.BudgetFrac, rec.Hyper.String(),
				rec.Result.Accuracy*100, rec.Result.Duration)
		}
	}

	if *gtFlag != "" {
		f, err := os.Create(*gtFlag)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := sys.SaveGroundTruth(f); err != nil {
			return err
		}
		fmt.Printf("saved ground truth to %s\n", *gtFlag)
	}
	return nil
}

func parseWorkload(s string) (pipetune.Workload, error) {
	for _, w := range pipetune.Catalog() {
		if w.Name() == strings.ToLower(s) {
			return w, nil
		}
	}
	names := make([]string, 0, 7)
	for _, w := range pipetune.Catalog() {
		names = append(names, w.Name())
	}
	return pipetune.Workload{}, fmt.Errorf("unknown workload %q (want one of %s)", s, strings.Join(names, ", "))
}
