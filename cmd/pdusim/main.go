// Command pdusim serves the LINDY iPower Control PDU simulator over HTTP —
// the power-measurement substrate of §7.1.1 — so external harnesses can
// poll it exactly as the paper polls the physical unit.
//
// Usage:
//
//	pdusim [-addr :8089] [-outlets "0=85,1=112"]
//
// Endpoints:
//
//	GET /power            aggregate active power (watts)
//	GET /power?outlet=N   one outlet's active power
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"

	"pipetune/internal/energy"
	"pipetune/internal/httpserve"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "pdusim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addrFlag    = flag.String("addr", ":8089", "listen address")
		outletsFlag = flag.String("outlets", "0=85,1=112", "initial outlet loads, e.g. 0=85,1=112")
		seedFlag    = flag.Uint64("seed", 1, "measurement-noise seed")
	)
	flag.Parse()

	pdu := energy.NewPDU(*seedFlag)
	for _, part := range strings.Split(*outletsFlag, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return fmt.Errorf("bad outlet spec %q (want outlet=watts)", part)
		}
		outlet, err := strconv.Atoi(kv[0])
		if err != nil {
			return fmt.Errorf("bad outlet %q: %w", kv[0], err)
		}
		watts, err := strconv.ParseFloat(kv[1], 64)
		if err != nil {
			return fmt.Errorf("bad watts %q: %w", kv[1], err)
		}
		if err := pdu.SetPower(outlet, watts); err != nil {
			return err
		}
	}

	// Same graceful lifecycle as pipetuned: serve until SIGINT/SIGTERM,
	// then drain in-flight polls through http.Server.Shutdown.
	srv := &http.Server{Addr: *addrFlag, Handler: pdu}
	return httpserve.ListenAndServe(context.Background(), srv, 0, func(addr net.Addr) {
		fmt.Printf("pdusim: LINDY iPower Control 2x6M simulator listening on %s\n", addr)
		fmt.Printf("pdusim: try  curl 'http://localhost%s/power?outlet=0'\n", httpserve.Port(addr))
	})
}
