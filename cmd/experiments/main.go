// Command experiments regenerates the paper's tables and figures as text
// tables (see EXPERIMENTS.md for the paper-vs-measured discussion).
//
// Usage:
//
//	experiments [-seed N] [-only fig1,table2,...] [-list]
//
// Experiment ids: fig1 fig2 fig3a fig3bc fig5 table2 fig8 fig9 fig11 fig12
// fig13 fig14 ablation-gt ablation-searchers ablation-threshold
// ablation-probe. Default runs everything.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pipetune/internal/experiments"
)

// renderer produces one experiment's table.
type renderer struct {
	id  string
	fn  func(experiments.Config) (interface{ Render() string }, error)
	doc string
}

func registry() []renderer {
	wrap := func(f func(experiments.Config) (*experiments.Table, error)) func(experiments.Config) (interface{ Render() string }, error) {
		return func(cfg experiments.Config) (interface{ Render() string }, error) {
			return f(cfg)
		}
	}
	return []renderer{
		{"fig1", wrap(tableOf(experiments.Figure1)), "exhaustive tuning cost on EC2"},
		{"fig2", wrap(tableOf(experiments.Figure2)), "58-event per-epoch profile heatmap"},
		{"fig3a", wrap(tableOf(experiments.Figure3a)), "batch-size impact"},
		{"fig3bc", wrap(tableOf(experiments.Figure3bc)), "cores impact per batch size"},
		{"fig5", wrap(tableOf(experiments.Figure5)), "Tune V2 under system conditions"},
		{"table2", wrap(tableOf(experiments.Table2)), "approach comparison on LeNet/MNIST"},
		{"fig8", wrap(tableOf(experiments.Figure8)), "workload-profile clustering"},
		{"fig9", wrap(tableOf(experiments.Figure9and10)), "convergence curves (figs 9+10)"},
		{"fig11", wrap(tableOf(experiments.Figure11)), "single tenancy, Type-I/II"},
		{"fig12", wrap(tableOf(experiments.Figure12)), "single tenancy, Type-III"},
		{"fig13", wrap(tableOf(experiments.Figure13)), "multi tenancy, Type-I/II"},
		{"fig14", wrap(tableOf(experiments.Figure14)), "multi tenancy, Type-III"},
		{"sched-policies", wrap(tableOf(experiments.SchedulingPolicies)), "placement policies under contention"},
		{"fair-share", wrap(tableOf(experiments.FairShare)), "weighted fair job dispatch across tenants"},
		{"scale-out", wrap(tableOf(experiments.ScaleOut)), "trial throughput vs pipetune-worker fleet size"},
		{"reuse", wrap(tableOf(experiments.Reuse)), "trial prefix cache: sys-sweep throughput, cache on/off"},
		{"spot-savings", wrap(tableOf(experiments.SpotSavings)), "spot fleet + checkpointed recovery vs all on-demand"},
		{"ablation-gt", wrap(tableOf(experiments.AblationNoGroundTruth)), "ground truth on/off"},
		{"ablation-searchers", wrap(tableOf(experiments.AblationSearchers)), "search algorithms"},
		{"ablation-threshold", wrap(tableOf(experiments.AblationThreshold)), "similarity threshold sweep"},
		{"ablation-probe", wrap(tableOf(experiments.AblationProbeBudget)), "probing budget sweep"},
	}
}

// tabler is any experiment result that renders to a Table.
type tabler interface {
	Table() *experiments.Table
}

// tableOf adapts a typed experiment function to the common signature.
func tableOf[T tabler](f func(experiments.Config) (T, error)) func(experiments.Config) (*experiments.Table, error) {
	return func(cfg experiments.Config) (*experiments.Table, error) {
		res, err := f(cfg)
		if err != nil {
			return nil, err
		}
		return res.Table(), nil
	}
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		seedFlag = flag.Uint64("seed", 42, "master seed")
		onlyFlag = flag.String("only", "", "comma-separated experiment ids (default: all)")
		listFlag = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	regs := registry()
	if *listFlag {
		for _, r := range regs {
			fmt.Printf("%-20s %s\n", r.id, r.doc)
		}
		return nil
	}

	want := map[string]bool{}
	if *onlyFlag != "" {
		for _, id := range strings.Split(*onlyFlag, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}

	cfg := experiments.DefaultConfig()
	cfg.Seed = *seedFlag
	ran := 0
	for _, r := range regs {
		if len(want) > 0 && !want[r.id] {
			continue
		}
		out, err := r.fn(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", r.id, err)
		}
		fmt.Printf("== %s ==\n%s\n", r.id, out.Render())
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("no experiments matched %q (use -list)", *onlyFlag)
	}
	return nil
}
