package pipetune

// Acceptance tests and the regression benchmark for the event-driven trial
// scheduler: on the Table 3 catalog, RunJob's simulated TuningTime must be
// no worse than the legacy barrier scheduler's (RunJobBarrier), with an
// identical best trial under a fixed seed.

import (
	"testing"

	"pipetune/internal/cluster"
	"pipetune/internal/dataset"
	"pipetune/internal/trainer"
	"pipetune/internal/tune"
	"pipetune/internal/workload"
)

// catalogRunner builds a tuner over the paper testbed with a small corpus
// (simulated durations derive from Table 3's full sizes, not the corpus).
func catalogRunner() *tune.Runner {
	tr := trainer.NewRunner()
	tr.Data = dataset.Config{TrainSize: 128, TestSize: 64}
	return tune.NewRunner(tr, cluster.Paper())
}

// catalogSpec is the standard V1 HyperBand job for a catalog workload.
func catalogSpec(w workload.Workload) tune.JobSpec {
	h := DefaultHyper()
	h.Epochs = 4
	return tune.JobSpec{
		Workload:    w,
		Mode:        ModeV1,
		Objective:   MaximizeAccuracy,
		HyperSpace:  PaperHyperSpace(),
		SystemSpace: PaperSystemSpace(),
		BaseHyper:   h,
		BaseSys:     DefaultSysConfig(),
		Seed:        42,
	}
}

func TestEventSchedulerNoWorseThanBarrierOnCatalog(t *testing.T) {
	catalog := Catalog()
	if testing.Short() {
		catalog = catalog[:2]
	}
	for _, w := range catalog {
		w := w
		t.Run(w.Name(), func(t *testing.T) {
			event, err := catalogRunner().RunJob(catalogSpec(w))
			if err != nil {
				t.Fatal(err)
			}
			barrier, err := catalogRunner().RunJobBarrier(catalogSpec(w))
			if err != nil {
				t.Fatal(err)
			}
			if event.TuningTime > barrier.TuningTime {
				t.Fatalf("event TuningTime %v exceeds barrier %v", event.TuningTime, barrier.TuningTime)
			}
			if event.Best.ID != barrier.Best.ID || event.Best.Score != barrier.Best.Score {
				t.Fatalf("best diverged: event %d/%v vs barrier %d/%v",
					event.Best.ID, event.Best.Score, barrier.Best.ID, barrier.Best.Score)
			}
			// Determinism: a second event-driven run reproduces the first.
			again, err := catalogRunner().RunJob(catalogSpec(w))
			if err != nil {
				t.Fatal(err)
			}
			if again.TuningTime != event.TuningTime || again.Best.ID != event.Best.ID ||
				again.Best.Score != event.Best.Score {
				t.Fatalf("same seed diverged: %v/%d vs %v/%d",
					again.TuningTime, again.Best.ID, event.TuningTime, event.Best.ID)
			}
		})
	}
}

func BenchmarkSchedulerVsBarrier(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var eventTotal, barrierTotal float64
		for _, w := range Catalog() {
			event, err := catalogRunner().RunJob(catalogSpec(w))
			if err != nil {
				b.Fatal(err)
			}
			barrier, err := catalogRunner().RunJobBarrier(catalogSpec(w))
			if err != nil {
				b.Fatal(err)
			}
			eventTotal += event.TuningTime
			barrierTotal += barrier.TuningTime
		}
		b.ReportMetric(eventTotal, "event-tuning-s")
		b.ReportMetric(barrierTotal, "barrier-tuning-s")
		b.ReportMetric(eventTotal/barrierTotal, "event/barrier-ratio")
	}
}
