// Package e2e holds multi-process smoke tests: they build the real
// binaries and drive them over real sockets. They are skipped unless
// PIPETUNE_E2E=1 (CI runs them in a dedicated job), so the regular unit
// sweep stays hermetic and fast.
package e2e

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pipetune/api"
	"pipetune/client"
)

// buildBinaries compiles pipetuned and pipetune-worker into a temp dir.
func buildBinaries(t *testing.T) (daemon, worker string) {
	t.Helper()
	dir := t.TempDir()
	daemon = filepath.Join(dir, "pipetuned")
	worker = filepath.Join(dir, "pipetune-worker")
	for bin, pkg := range map[string]string{daemon: "./cmd/pipetuned", worker: "./cmd/pipetune-worker"} {
		cmd := exec.Command("go", "build", "-o", bin, pkg)
		cmd.Dir = ".."
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", pkg, err, out)
		}
	}
	return daemon, worker
}

// startDaemon launches pipetuned on an ephemeral port and returns its
// bound address (parsed from the startup banner) and the process.
func startDaemon(t *testing.T, bin string, args ...string) (string, *exec.Cmd) {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0", "-gt", ""}, args...)...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	})
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			t.Logf("daemon: %s", line)
			if i := strings.Index(line, "serving the tuning API on "); i >= 0 {
				rest := line[i+len("serving the tuning API on "):]
				if j := strings.Index(rest, " "); j > 0 {
					select {
					case addrCh <- rest[:j]:
					default:
					}
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return addr, cmd
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never printed its address")
		return "", nil
	}
}

// startWorker launches one pipetune-worker against the daemon, speaking
// the given wire protocol.
func startWorker(t *testing.T, bin, serverURL, token, wire string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin,
		"-server", serverURL, "-token", token, "-wire", wire,
		"-capacity", "2", "-heartbeat", "50ms")
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	})
	return cmd
}

func resultJSON(t *testing.T, st api.JobStatus) string {
	t.Helper()
	if st.State != api.StateDone || st.Result == nil {
		t.Fatalf("job %s: state %v err %q result %v", st.ID, st.State, st.Error, st.Result != nil)
	}
	b, err := json.Marshal(st.Result)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestRemoteE2E is the multi-process acceptance smoke, run once per
// wire protocol: a real pipetuned daemon with -exec-backend=remote, two
// real pipetune-worker processes, one job through the HTTP API; one
// worker is SIGKILLed mid-job; the job must complete with a result
// byte-identical to a -exec-backend=local daemon's — the same reference
// bytes for both wires, so the subtests also prove json/binary parity
// across process boundaries.
func TestRemoteE2E(t *testing.T) {
	if os.Getenv("PIPETUNE_E2E") == "" {
		t.Skip("multi-process e2e: set PIPETUNE_E2E=1 to run")
	}
	daemonBin, workerBin := buildBinaries(t)
	ctx, cancel := context.WithTimeout(context.Background(), 8*time.Minute)
	defer cancel()

	// Reference: the same job on a local-backend daemon.
	localAddr, _ := startDaemon(t, daemonBin, "-exec-backend", "local")
	localCl := client.New("http://" + localAddr)
	req := api.JobRequest{Workload: "lenet/mnist", Seed: 7, Epochs: 2}
	st, err := localCl.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	localFinal, err := localCl.Wait(ctx, st.ID, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	want := resultJSON(t, localFinal)

	for _, wire := range []string{"json", "binary"} {
		t.Run(wire, func(t *testing.T) {
			remoteE2E(t, ctx, daemonBin, workerBin, wire, req, want)
		})
	}
}

// remoteE2E runs the SIGKILL-a-worker scenario on one wire protocol.
func remoteE2E(t *testing.T, ctx context.Context, daemonBin, workerBin, wire string, req api.JobRequest, want string) {
	// The remote fleet: daemon + two workers, aggressive eviction so the
	// kill below recovers quickly.
	const token = "e2e-s3cret"
	remoteAddr, _ := startDaemon(t, daemonBin,
		"-exec-backend", "remote", "-exec-wire", wire, "-worker-token", token,
		"-worker-heartbeat", "100ms", "-worker-evict-after", "2")
	remoteURL := "http://" + remoteAddr
	remoteCl := client.New(remoteURL)
	w1 := startWorker(t, workerBin, remoteURL, token, wire)
	startWorker(t, workerBin, remoteURL, token, wire)

	// Both workers registered?
	deadline := time.Now().Add(30 * time.Second)
	for {
		fs, err := remoteCl.Fleet(ctx)
		if err == nil && len(fs.Workers) >= 2 {
			break
		}
		if !time.Now().Before(deadline) {
			t.Fatalf("two workers never registered (last: %v)", err)
		}
		time.Sleep(50 * time.Millisecond)
	}

	st, err := remoteCl.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	// Kill worker 1 the moment it holds work: the daemon must evict it,
	// requeue its leases and let worker 2 finish the job.
	deadline = time.Now().Add(60 * time.Second)
	for {
		fs, err := remoteCl.Fleet(ctx)
		if err == nil && fs.LeasedTrials > 0 {
			break
		}
		if !time.Now().Before(deadline) {
			t.Fatal("no trial was ever leased")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := w1.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	t.Log("killed worker 1 mid-job")

	remoteFinal, err := remoteCl.Wait(ctx, st.ID, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	got := resultJSON(t, remoteFinal)
	if got != want {
		t.Fatalf("%s-wire remote-fleet result diverges from the local daemon's", wire)
	}

	// The daemon's fleet surface must show the casualty, the work and the
	// wire protocol in force.
	fs, err := remoteCl.Fleet(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if fs.Wire != wire {
		t.Fatalf("fleet wire = %q, want %q", fs.Wire, wire)
	}
	evicted := false
	for _, w := range fs.Workers {
		if w.State == "evicted" {
			evicted = true
		}
	}
	if !evicted {
		t.Fatalf("killed worker not recorded as evicted: %+v", fs.Workers)
	}
	if fs.CompletedTrials == 0 {
		t.Fatal("fleet reports zero completed trials")
	}
	health, err := remoteCl.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if health.ExecBackend != "remote" || health.Fleet == nil {
		t.Fatalf("healthz: backend %q fleet %v", health.ExecBackend, health.Fleet != nil)
	}
	fmt.Printf("e2e: %s-wire remote result matches local (%d bytes), %d trials on the fleet, eviction recovered\n",
		wire, len(got), fs.CompletedTrials)
}
