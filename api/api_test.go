package api

import (
	"testing"

	"pipetune/internal/workload"
)

func TestParseWorkloadCatalog(t *testing.T) {
	// Every Table 3 workload must round-trip through its Name().
	for _, w := range workload.Catalog() {
		got, err := ParseWorkload(w.Name())
		if err != nil {
			t.Errorf("ParseWorkload(%q): %v", w.Name(), err)
			continue
		}
		if got != w {
			t.Errorf("ParseWorkload(%q) = %+v, want %+v", w.Name(), got, w)
		}
	}
}

func TestParseWorkloadOffCatalog(t *testing.T) {
	// Any model/dataset combination parses, not only the paper pairings.
	w, err := ParseWorkload("cnn/fashion")
	if err != nil {
		t.Fatal(err)
	}
	if w.Model != workload.CNN || w.Dataset != workload.FashionMNIST {
		t.Fatalf("ParseWorkload(cnn/fashion) = %+v", w)
	}
}

func TestParseWorkloadRejectsUnknown(t *testing.T) {
	for _, bad := range []string{"", "lenet", "lenet/", "/mnist", "resnet/imagenet", "lenet mnist"} {
		if _, err := ParseWorkload(bad); err == nil {
			t.Errorf("ParseWorkload(%q) accepted", bad)
		}
	}
}

func TestJobStateTerminal(t *testing.T) {
	for state, terminal := range map[JobState]bool{
		StateQueued: false, StateRunning: false,
		StateDone: true, StateFailed: true, StateCancelled: true,
	} {
		if state.Terminal() != terminal {
			t.Errorf("%s.Terminal() = %v", state, state.Terminal())
		}
	}
}
