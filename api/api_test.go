package api

import (
	"encoding/json"
	"strings"
	"testing"

	"pipetune/internal/workload"
)

func TestParseWorkloadCatalog(t *testing.T) {
	// Every Table 3 workload must round-trip through its Name().
	for _, w := range workload.Catalog() {
		got, err := ParseWorkload(w.Name())
		if err != nil {
			t.Errorf("ParseWorkload(%q): %v", w.Name(), err)
			continue
		}
		if got != w {
			t.Errorf("ParseWorkload(%q) = %+v, want %+v", w.Name(), got, w)
		}
	}
}

func TestParseWorkloadOffCatalog(t *testing.T) {
	// Any model/dataset combination parses, not only the paper pairings.
	w, err := ParseWorkload("cnn/fashion")
	if err != nil {
		t.Fatal(err)
	}
	if w.Model != workload.CNN || w.Dataset != workload.FashionMNIST {
		t.Fatalf("ParseWorkload(cnn/fashion) = %+v", w)
	}
}

func TestParseWorkloadRejectsUnknown(t *testing.T) {
	for _, bad := range []string{"", "lenet", "lenet/", "/mnist", "resnet/imagenet", "lenet mnist"} {
		if _, err := ParseWorkload(bad); err == nil {
			t.Errorf("ParseWorkload(%q) accepted", bad)
		}
	}
}

func TestJobStateTerminal(t *testing.T) {
	for state, terminal := range map[JobState]bool{
		StateQueued: false, StateRunning: false,
		StateDone: true, StateFailed: true, StateCancelled: true,
	} {
		if state.Terminal() != terminal {
			t.Errorf("%s.Terminal() = %v", state, state.Terminal())
		}
	}
}

// TestJobStatusWireFormat pins the dispatcher's additions to the status
// body: tenant always present, queuePosition only when set (a *int so
// rank 0 still serialises), predictedDuration elided at zero.
func TestJobStatusWireFormat(t *testing.T) {
	pos := 0
	st := JobStatus{ID: "job-000001", State: StateQueued, Tenant: "gold", QueuePosition: &pos}
	b, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	s := string(b)
	for _, want := range []string{`"tenant":"gold"`, `"queuePosition":0`} {
		if !strings.Contains(s, want) {
			t.Errorf("status body %s missing %s", s, want)
		}
	}
	if strings.Contains(s, "predictedDuration") {
		t.Errorf("zero predictedDuration not elided: %s", s)
	}
	st.QueuePosition = nil
	if b, _ = json.Marshal(st); strings.Contains(string(b), "queuePosition") {
		t.Errorf("nil queuePosition not elided: %s", b)
	}
}

// TestHealthTenantsWireFormat pins the per-tenant health rows.
func TestHealthTenantsWireFormat(t *testing.T) {
	h := Health{Status: "ok", JobPolicy: "fair", Tenants: []TenantHealth{
		{Tenant: "gold", Weight: 2, Queued: 1, MeanWaitSeconds: 0.5, MaxWaitSeconds: 1.5},
	}}
	b, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"jobPolicy":"fair"`, `"tenant":"gold"`, `"weight":2`, `"meanWaitSeconds":0.5`} {
		if !strings.Contains(string(b), want) {
			t.Errorf("health body %s missing %s", b, want)
		}
	}
}

// TestEventLaggedIsTerminalForStreamOnly pins the lagged event type: it
// is a distinct type, not a job state, so JobState.Terminal stays
// untouched by subscriber drops.
func TestEventLaggedIsTerminalForStreamOnly(t *testing.T) {
	if EventLagged == EventState || EventLagged == EventTrial {
		t.Fatal("lagged event type collides with an existing type")
	}
	if JobState(EventLagged).Terminal() {
		t.Fatal("lagged leaked into the job state machine")
	}
}
