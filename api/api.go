// Package api defines the wire types of the pipetuned HTTP/JSON API. It
// is shared by the service implementation (internal/service), the Go
// client (client) and any external consumer that wants to speak the
// protocol directly.
//
// The API surface (all JSON):
//
//	POST   /v1/jobs             submit a tuning job        -> JobStatus
//	GET    /v1/jobs             list jobs (summaries)      -> []JobStatus
//	GET    /v1/jobs/{id}        one job's status/result    -> JobStatus
//	DELETE /v1/jobs/{id}        cancel a job               -> JobStatus
//	GET    /v1/jobs/{id}/events stream progress (SSE)      -> Event frames
//	GET    /v1/groundtruth      shared ground-truth stats  -> GroundTruthStats
//	GET    /v1/groundtruth/export  dump the database       -> GroundTruthDump
//	POST   /v1/groundtruth/import  merge entries in        -> ImportResult
//	GET    /healthz             liveness + queue depths    -> Health
//
// When the daemon runs the remote execution backend (-exec-backend=
// remote) it additionally serves the worker-facing work API that
// pipetune-worker processes speak — registration, trial leases, epoch
// streaming, result commit, heartbeats — plus an operator-facing fleet
// surface:
//
//	POST   /v1/workers                              register -> WorkerRegisterResponse
//	POST   /v1/workers/{id}/heartbeat               liveness
//	POST   /v1/workers/{id}/lease                   lease a trial -> WorkerAssignment | 204
//	POST   /v1/workers/{id}/leases/{lease}/epoch    epoch report  -> WorkerEpochDirective
//	POST   /v1/workers/{id}/leases/{lease}/complete result commit (at most once)
//	POST   /v1/stream                               upgrade to the framed binary stream
//	GET    /v1/fleet                                fleet status  -> FleetStatus
//
// The JSON work routes and the binary stream upgrade are the same
// protocol over two wires; -exec-wire selects which the daemon mounts
// (FleetStatus.Wire reports the wire kind in force), and results are
// byte-identical either way. Worker routes require "Authorization:
// Bearer <token>" when the daemon was started with -worker-token;
// /v1/fleet stays open like /healthz.
//
// Job results are the library's own tune.JobResult serialisation, so a
// result fetched over HTTP is bit-identical to one produced by calling
// pipetune.System.RunPipeTune in-process with the same spec, seed AND
// ground-truth state (e.g. both fresh). The shared database is the one
// deliberate source of history-dependence: a PipeTune-mode job skips
// probing on ground-truth hits earlier jobs made possible (§7.4), so
// resubmitting a job to a daemon that has learned since will — by design
// — finish faster than its first run.
package api

import (
	"fmt"
	"time"

	"pipetune/internal/cluster"
	"pipetune/internal/exec"
	"pipetune/internal/gt"
	"pipetune/internal/metrics"
	"pipetune/internal/tune"
	"pipetune/internal/workload"
)

// JobResult aliases the library's job result: the HTTP API returns the
// exact same serialisation the library produces.
type JobResult = tune.JobResult

// TrialRecord aliases the library's per-trial record.
type TrialRecord = tune.TrialRecord

// JobState is a job's lifecycle state. Transitions:
//
//	queued -> running -> done | failed
//	queued -> cancelled            (cancelled while waiting)
//	running -> cancelled           (cancelled mid-run)
type JobState string

// Lifecycle states.
const (
	StateQueued    JobState = "queued"
	StateRunning   JobState = "running"
	StateDone      JobState = "done"
	StateFailed    JobState = "failed"
	StateCancelled JobState = "cancelled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Job modes accepted by JobRequest.Mode.
const (
	ModePipeTune = "pipetune" // PipeTune middleware (default)
	ModeTuneV1   = "tune-v1"  // baseline: hyper only, fixed system config
	ModeTuneV2   = "tune-v2"  // baseline: system folded into the search space
)

// Objectives accepted by JobRequest.Objective.
const (
	ObjectiveAccuracy        = "accuracy"
	ObjectiveAccuracyPerTime = "accuracy/time"
)

// JobRequest is the submission body of POST /v1/jobs.
type JobRequest struct {
	// Workload is the "model/dataset" label, e.g. "lenet/mnist" (see
	// ParseWorkload for the vocabulary).
	Workload string `json:"workload"`
	// Mode selects the middleware: "pipetune" (default), "tune-v1" or
	// "tune-v2".
	Mode string `json:"mode,omitempty"`
	// Objective is "accuracy" or "accuracy/time". Empty defaults to
	// accuracy, except in tune-v2 mode which defaults to accuracy/time
	// (the paper's V2 semantics).
	Objective string `json:"objective,omitempty"`
	// Tenant names the fair-share accounting principal the job bills to.
	// Empty maps to "default". Tenancy only changes *when* a job
	// dispatches (under the service's fair or sjf job policies), never how
	// it runs.
	Tenant string `json:"tenant,omitempty"`
	// Priority orders jobs within a tenant: higher dispatches first, ties
	// preserve submission order. Zero is the default. Ignored by the pure
	// FIFO job policy only in the sense that every job defaults to zero —
	// a non-zero priority reorders there too.
	Priority int `json:"priority,omitempty"`
	// Seed fixes the job's randomness; 0 uses the service's master seed.
	// Repeat submissions with the same seed replay the same search, but a
	// PipeTune-mode job's trial durations also depend on the shared
	// ground-truth state, which grows as the daemon serves jobs.
	Seed uint64 `json:"seed,omitempty"`
	// Epochs overrides the full-budget epoch count (0 = service default).
	Epochs int `json:"epochs,omitempty"`
	// MaxParallel bounds the job's concurrent trials (0 = cluster-derived).
	MaxParallel int `json:"maxParallel,omitempty"`
}

// JobStatus is the canonical job representation returned by every job
// endpoint.
type JobStatus struct {
	ID    string   `json:"id"`
	State JobState `json:"state"`
	// Tenant is the resolved accounting principal ("default" when the
	// request named none).
	Tenant string `json:"tenant"`
	// Priority echoes the request's dispatch priority.
	Priority   int        `json:"priority,omitempty"`
	Request    JobRequest `json:"request"`
	Submitted  time.Time  `json:"submitted"`
	Started    *time.Time `json:"started,omitempty"`
	Finished   *time.Time `json:"finished,omitempty"`
	TrialsDone int        `json:"trialsDone"`
	Error      string     `json:"error,omitempty"`
	// QueuePosition is the job's 0-based rank in the dispatcher's nominal
	// dispatch order, set only while the job is queued.
	QueuePosition *int `json:"queuePosition,omitempty"`
	// PredictedDuration is the cost model's service-time estimate for one
	// full-budget trial of this job (simulated seconds) — the relative
	// cost the sjf and fair job policies schedule on. 0 when the model
	// cannot price the workload.
	PredictedDuration float64 `json:"predictedDuration,omitempty"`
	// Result is set once State is "done" — on single-job surfaces (GET
	// /v1/jobs/{id}, DELETE). The list endpoint returns summaries without
	// results: fetch the job by ID for its trial history.
	Result *JobResult `json:"result,omitempty"`
}

// Event is one frame of the GET /v1/jobs/{id}/events stream. Trial events
// carry Trial; the single terminal state event carries State (and Error
// when the job failed). A "lagged" event is terminal for the *stream*, not
// the job: the server dropped this subscriber because it fell too far
// behind, and the client should re-subscribe (the replay is complete from
// the start) or fall back to polling. Lagged frames are per-subscriber and
// carry Seq 0 — they are not part of the job's replayable event log.
type Event struct {
	Type  string      `json:"type"` // "trial" | "state" | "lagged"
	JobID string      `json:"jobId"`
	Seq   int         `json:"seq"`
	Trial *TrialEvent `json:"trial,omitempty"`
	State JobState    `json:"state,omitempty"`
	Error string      `json:"error,omitempty"`
}

// Event types.
const (
	EventTrial = "trial"
	EventState = "state"
	// EventLagged tells a subscriber it was dropped for falling behind:
	// the stream ends here without the job's terminal state, and the
	// client must re-subscribe and replay to learn the true outcome.
	EventLagged = "lagged"
)

// TrialEvent summarises one completed trial, emitted in simulated
// completion order as the job runs.
type TrialEvent struct {
	TrialID  int     `json:"trialId"`
	Accuracy float64 `json:"accuracy"`
	Duration float64 `json:"duration"` // simulated seconds
	EnergyJ  float64 `json:"energyJ"`
	Epochs   int     `json:"epochs"`
}

// GroundTruthStats reports the service-wide shared similarity database.
type GroundTruthStats struct {
	Entries int `json:"entries"`
	Hits    int `json:"hits"`
	Misses  int `json:"misses"`
	// Rev is the data revision (advances on every mutation); ModelRev is
	// the revision the fitted similarity models cover. ModelRev == Rev
	// means no refits are pending behind the store's watermark.
	Rev      uint64 `json:"rev"`
	ModelRev uint64 `json:"modelRev"`
	// Shards is the number of profile-cluster partitions (1 for the
	// monolithic store).
	Shards int `json:"shards"`
	// Store names the backing implementation ("sharded", "monolith").
	Store string `json:"store,omitempty"`
	// WALRecords is the depth of the un-compacted write-ahead log (0 when
	// persistence is disabled or freshly compacted).
	WALRecords int    `json:"walRecords,omitempty"`
	Similarity string `json:"similarity"`
}

// GroundTruthEntry aliases the store's entry record: one historical
// profile with its known-best system configuration.
type GroundTruthEntry = gt.Entry

// GroundTruthDump is the GET /v1/groundtruth/export body and the POST
// /v1/groundtruth/import request: the same legacy-compatible snapshot
// format the stores read and write on disk.
type GroundTruthDump struct {
	Entries []GroundTruthEntry `json:"entries"`
}

// ImportResult is the POST /v1/groundtruth/import response.
type ImportResult struct {
	// Imported counts the entries merged into the database.
	Imported int `json:"imported"`
	// Stats is the database state after the merge.
	Stats GroundTruthStats `json:"stats"`
}

// Worker wire types: the work API spoken between the daemon's remote
// execution backend and pipetune-worker processes, plus the fleet
// status surface. They alias the execution plane's own definitions —
// internal/exec owns the protocol.
type (
	// WorkerRegisterRequest is the body of POST /v1/workers.
	WorkerRegisterRequest = exec.RegisterRequest
	// WorkerRegisterResponse assigns a worker its fleet identity.
	WorkerRegisterResponse = exec.RegisterResponse
	// WorkerAssignment is one leased trial.
	WorkerAssignment = exec.Assignment
	// WorkerEpochReport streams one epoch-boundary observation back.
	WorkerEpochReport = exec.EpochReport
	// WorkerEpochDirective is the daemon's reply: an optional system
	// reconfiguration (PipeTune's pipelined tuning) or a revocation.
	WorkerEpochDirective = exec.EpochDirective
	// WorkerCompleteRequest commits a finished trial at most once.
	WorkerCompleteRequest = exec.CompleteRequest
	// FleetStatus is the execution plane's health surface (GET /v1/fleet
	// and Health.Fleet).
	FleetStatus = exec.FleetStatus
	// WorkerStatus is one worker's row in FleetStatus.
	WorkerStatus = exec.WorkerStatus
	// MetricsSnapshot is the GET /v1/metrics body: the full metrics
	// registry as typed JSON — every family the Prometheus /metrics page
	// exposes, with summaries carrying count/sum/min/max and the exported
	// quantiles instead of text-format series.
	MetricsSnapshot = metrics.RegistrySnapshot
	// MetricsFamily is one named family in a MetricsSnapshot.
	MetricsFamily = metrics.Family
	// MetricsSample is one labelled series within a family.
	MetricsSample = metrics.Sample
	// NodeClassStatus is one node class's row in ClusterStatus and
	// FleetStatus — the simulated heterogeneous cluster's composition.
	NodeClassStatus = cluster.ClassStatus
)

// ClusterStatus reports the simulated cluster's node-class composition in
// the Health body: total node count split into spot and on-demand, plus
// the per-class rows. Classes is empty on legacy single-class clusters.
type ClusterStatus struct {
	Nodes         int               `json:"nodes"`
	SpotNodes     int               `json:"spotNodes"`
	OnDemandNodes int               `json:"onDemandNodes"`
	Classes       []NodeClassStatus `json:"classes,omitempty"`
}

// Health is the GET /healthz body.
type Health struct {
	Status  string `json:"status"` // always "ok" when the server responds
	Queued  int    `json:"queued"`
	Running int    `json:"running"`
	Workers int    `json:"workers"`
	// JobPolicy names the active job dispatch policy ("fifo", "fair",
	// "sjf").
	JobPolicy string `json:"jobPolicy"`
	// ExecBackend names the active trial execution backend ("local",
	// "remote").
	ExecBackend string `json:"execBackend,omitempty"`
	// Tenants reports per-tenant queue depths and wait-time statistics,
	// sorted by tenant name. Only tenants that have ever submitted appear.
	Tenants []TenantHealth `json:"tenants,omitempty"`
	// Fleet reports the remote execution plane — registered workers,
	// lease depths, drain state. Absent on the local backend.
	Fleet *FleetStatus `json:"fleet,omitempty"`
	// Cluster reports the simulated cluster's node-class composition.
	// Absent when the service runs the legacy single-class cluster.
	Cluster *ClusterStatus `json:"cluster,omitempty"`
}

// TenantHealth is one tenant's slice of the service in the Health body.
type TenantHealth struct {
	Tenant string `json:"tenant"`
	// Weight is the fair-share weight the dispatcher bills this tenant at.
	Weight   int `json:"weight"`
	Queued   int `json:"queued"`
	Running  int `json:"running"`
	Finished int `json:"finished"`
	// MeanWaitSeconds / MaxWaitSeconds are wall-clock queue waits of the
	// tenant's dispatched jobs (submission to worker pickup).
	MeanWaitSeconds float64 `json:"meanWaitSeconds"`
	MaxWaitSeconds  float64 `json:"maxWaitSeconds"`
}

// Error is the JSON error body every non-2xx response carries.
type Error struct {
	StatusCode int    `json:"-"`
	Message    string `json:"error"`
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("pipetuned: %s (HTTP %d)", e.Message, e.StatusCode)
}

// ParseWorkload resolves a "model/dataset" label (the workload.Name()
// vocabulary: models lenet, cnn, lstm, jacobi, spkmeans, bfs; datasets
// mnist, fashion, news20, rodinia) to a workload. It accepts any
// model/dataset combination the simulator can train, not only the seven
// Table 3 pairings.
func ParseWorkload(name string) (workload.Workload, error) {
	models := []workload.Model{
		workload.LeNet5, workload.CNN, workload.LSTM,
		workload.Jacobi, workload.SPKMeans, workload.BFS,
	}
	datasets := []workload.Dataset{
		workload.MNIST, workload.FashionMNIST, workload.News20, workload.Rodinia,
	}
	for _, m := range models {
		for _, d := range datasets {
			w := workload.Workload{Model: m, Dataset: d}
			if w.Name() == name {
				return w, nil
			}
		}
	}
	return workload.Workload{}, fmt.Errorf("api: unknown workload %q (want model/dataset, e.g. %q)",
		name, workload.Catalog()[0].Name())
}
