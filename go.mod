module pipetune

go 1.24
