package pipetune

import (
	"bytes"
	"encoding/json"
	"errors"
	"sync"
	"testing"
)

var errNoBest = errors.New("job completed without a best trial")

func fastSystem(t *testing.T, opts ...Option) *System {
	t.Helper()
	base := []Option{WithSeed(42), WithCorpusSize(128, 64)}
	s, err := New(append(base, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func fastSpec(s *System, w Workload) JobSpec {
	spec := s.JobSpec(w)
	spec.BaseHyper.Epochs = 4
	spec.HyperSpace = Space{
		{Name: "batch_size", Values: []float64{32, 256}},
		{Name: "learning_rate", Values: []float64{0.01, 0.05}},
	}
	return spec
}

func TestFacadeEndToEnd(t *testing.T) {
	s := fastSystem(t)
	w := Workload{Model: LeNet5, Dataset: MNIST}
	if err := s.Bootstrap(WorkloadsOfType(TypeI)); err != nil {
		t.Fatal(err)
	}
	spec := fastSpec(s, w)

	base, err := s.RunBaseline(spec)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := s.RunPipeTune(spec)
	if err != nil {
		t.Fatal(err)
	}
	if pt.TuningTime >= base.TuningTime {
		t.Fatalf("PipeTune tuning %v not below baseline %v", pt.TuningTime, base.TuningTime)
	}
	entries, hits, _ := s.GroundTruthStats()
	if entries == 0 {
		t.Fatal("ground truth empty after bootstrap")
	}
	if hits == 0 {
		t.Fatal("no ground-truth hits")
	}
}

// TestTrialCacheJobParity pins the facade-level guarantee behind
// -trial-cache: a whole tuning job — baseline and PipeTune, searcher and
// scheduler included — produces byte-identical JobResult JSON with the
// trial prefix cache on and off. The cached system also proves reuse
// actually happened: the PipeTune job's trials share prefixes with the
// baseline's (same spec, same derived seeds), so the cache replays them.
func TestTrialCacheJobParity(t *testing.T) {
	w := Workload{Model: LeNet5, Dataset: MNIST}
	runJobs := func(s *System) (string, string) {
		t.Helper()
		spec := fastSpec(s, w)
		base, err := s.RunBaseline(spec)
		if err != nil {
			t.Fatal(err)
		}
		pt, err := s.RunPipeTune(spec)
		if err != nil {
			t.Fatal(err)
		}
		bb, err := json.Marshal(base)
		if err != nil {
			t.Fatal(err)
		}
		pb, err := json.Marshal(pt)
		if err != nil {
			t.Fatal(err)
		}
		return string(bb), string(pb)
	}
	wantBase, wantPT := runJobs(fastSystem(t))
	cached := fastSystem(t, WithTrialCache(0))
	gotBase, gotPT := runJobs(cached)
	if gotBase != wantBase {
		t.Error("baseline JobResult JSON differs with the trial cache enabled")
	}
	if gotPT != wantPT {
		t.Error("PipeTune JobResult JSON differs with the trial cache enabled")
	}
	st := cached.TrainerCacheStats()
	if st.TrajectoryHits+st.CheckpointHits+st.FlightHits == 0 {
		t.Fatalf("cache recorded no reuse across the two jobs: %+v", st)
	}
	if st.EpochsSaved == 0 {
		t.Fatalf("cache saved no epochs: %+v", st)
	}
}

func TestFacadeConcurrentRuns(t *testing.T) {
	// One System, many tenants: concurrent RunPipeTune calls over the
	// shared ground-truth database must all complete (the pipetuned
	// service depends on this guarantee).
	s := fastSystem(t)
	workloads := []Workload{
		{Model: LeNet5, Dataset: MNIST},
		{Model: CNN, Dataset: MNIST},
		{Model: LeNet5, Dataset: FashionMNIST},
	}
	var wg sync.WaitGroup
	errs := make([]error, len(workloads))
	for i, w := range workloads {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := s.RunPipeTune(fastSpec(s, w))
			if err == nil && res.Best == nil {
				err = errNoBest
			}
			errs[i] = err
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("concurrent job %d (%s): %v", i, workloads[i].Name(), err)
		}
	}
	entries, _, _ := s.GroundTruthStats()
	if entries == 0 {
		t.Fatal("concurrent jobs fed nothing into the shared ground truth")
	}
}

func TestFacadeV2Mode(t *testing.T) {
	s := fastSystem(t)
	spec := fastSpec(s, Workload{Model: LeNet5, Dataset: MNIST})
	spec.Mode = ModeV2
	spec.Objective = MaximizeAccuracyPerTime
	spec.SystemSpace = Space{{Name: "cores", Values: []float64{4, 8}}}
	res, err := s.RunBaseline(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil {
		t.Fatal("no best trial")
	}
}

func TestFacadeGroundTruthPersistence(t *testing.T) {
	s := fastSystem(t)
	if err := s.Bootstrap(WorkloadsOfType(TypeI, TypeII)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.SaveGroundTruth(&buf); err != nil {
		t.Fatal(err)
	}
	s2 := fastSystem(t)
	if err := s2.LoadGroundTruth(&buf); err != nil {
		t.Fatal(err)
	}
	e1, _, _ := s.GroundTruthStats()
	e2, _, _ := s2.GroundTruthStats()
	if e1 != e2 || e2 == 0 {
		t.Fatalf("round trip lost entries: %d vs %d", e1, e2)
	}
}

func TestFacadeOptions(t *testing.T) {
	s := fastSystem(t,
		WithSingleNode(),
		WithProbes([]SysConfig{{Cores: 2, MemoryGB: 8}, {Cores: 8, MemoryGB: 16}}),
		WithEnergyObjective(),
		WithLoad(2),
	)
	w := Workload{Model: Jacobi, Dataset: Rodinia}
	spec := fastSpec(s, w)
	spec.BaseSys = SysConfig{Cores: 8, MemoryGB: 16}
	res, err := s.RunPipeTune(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil {
		t.Fatal("no result on single node")
	}
}

func TestFacadeCatalog(t *testing.T) {
	if len(Catalog()) != 7 {
		t.Fatalf("catalog has %d workloads", len(Catalog()))
	}
	if len(WorkloadsOfType(TypeIII)) != 3 {
		t.Fatal("Type-III filter broken")
	}
	if DefaultHyper().BatchSize != 32 {
		t.Fatal("unexpected default batch size")
	}
	if PaperHyperSpace().Size() == 0 || PaperSystemSpace().Size() == 0 {
		t.Fatal("paper spaces empty")
	}
}

func TestFacadePredictDuration(t *testing.T) {
	s := fastSystem(t)
	d, err := s.PredictTrialDuration(Workload{Model: LeNet5, Dataset: MNIST}, DefaultHyper(), DefaultSysConfig())
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Fatalf("predicted duration %v", d)
	}
}

func TestFacadeNearestNeighborSimilarity(t *testing.T) {
	s := fastSystem(t, WithNearestNeighborSimilarity(3.0))
	if err := s.Bootstrap(WorkloadsOfType(TypeI)); err != nil {
		t.Fatal(err)
	}
	res, err := s.RunPipeTune(fastSpec(s, Workload{Model: LeNet5, Dataset: MNIST}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil {
		t.Fatal("no best trial under k-NN similarity")
	}
	_, hits, _ := s.GroundTruthStats()
	if hits == 0 {
		t.Fatal("k-NN similarity never hit after bootstrap")
	}
}

func TestFacadeCustomCluster(t *testing.T) {
	s := fastSystem(t, WithCluster(2, 16, 32))
	spec := fastSpec(s, Workload{Model: LeNet5, Dataset: MNIST})
	if _, err := s.RunBaseline(spec); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeInvalidClusterRejected(t *testing.T) {
	// Regression: WithCluster used to swallow the cluster.New error and
	// silently fall back to the default testbed.
	if _, err := New(WithCluster(0, 16, 32)); err == nil {
		t.Fatal("zero-node cluster accepted")
	}
	if _, err := New(WithCluster(2, -1, 32)); err == nil {
		t.Fatal("negative-core cluster accepted")
	}
}

func TestFacadeScheduler(t *testing.T) {
	if _, err := New(WithScheduler("lifo")); err == nil {
		t.Fatal("unknown scheduler policy accepted")
	}
	for _, policy := range []string{SchedFIFO, SchedSJF, SchedBackfill} {
		s := fastSystem(t, WithScheduler(policy))
		res, err := s.RunBaseline(fastSpec(s, Workload{Model: LeNet5, Dataset: MNIST}))
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		if res.Best == nil {
			t.Fatalf("%s: no best trial", policy)
		}
	}
}
