// Image classification (Type-I jobs): the same LeNet-5 model tuned for two
// different datasets — the paper's recommendation-engine pattern where a
// model is retrained per tenant corpus.
//
// The demonstration runs the Fashion-MNIST job twice: once on a cold
// system (no history — every trial probes system configurations from
// scratch) and once after an MNIST job has populated the ground-truth
// database. The warm run reuses the discovered configuration at epoch 2 of
// each trial and finishes its tuning sooner.
//
//	go run ./examples/imageclass
package main

import (
	"fmt"
	"log"

	"pipetune"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fashion := pipetune.Workload{Model: pipetune.LeNet5, Dataset: pipetune.FashionMNIST}
	mnist := pipetune.Workload{Model: pipetune.LeNet5, Dataset: pipetune.MNIST}

	// Cold: a fresh system runs the Fashion-MNIST job with no history.
	coldSys, err := pipetune.New(pipetune.WithSeed(7), pipetune.WithCorpusSize(512, 192))
	if err != nil {
		return err
	}
	cold, err := coldSys.RunPipeTune(coldSys.JobSpec(fashion))
	if err != nil {
		return err
	}

	// Warm: the same job, after an MNIST job built up the ground truth.
	warmSys, err := pipetune.New(pipetune.WithSeed(7), pipetune.WithCorpusSize(512, 192))
	if err != nil {
		return err
	}
	if _, err := warmSys.RunPipeTune(warmSys.JobSpec(mnist)); err != nil {
		return err
	}
	warm, err := warmSys.RunPipeTune(warmSys.JobSpec(fashion))
	if err != nil {
		return err
	}

	fmt.Printf("%-28s  %-12s  %-12s\n", "fashion-mnist job", "accuracy", "tuning [s]")
	fmt.Printf("%-28s  %-12.2f  %-12.1f\n", "cold (no history)", cold.Best.Result.Accuracy*100, cold.TuningTime)
	fmt.Printf("%-28s  %-12.2f  %-12.1f\n", "warm (after mnist job)", warm.Best.Result.Accuracy*100, warm.TuningTime)

	entries, hits, misses := warmSys.GroundTruthStats()
	fmt.Printf("\nwarm system ground truth: %d entries, %d hits, %d misses\n", entries, hits, misses)
	fmt.Printf("tuning-time reduction from history: %.1f%%\n", (1-warm.TuningTime/cold.TuningTime)*100)
	fmt.Println("\nSame model + new dataset lands in the same profile cluster (Type-I,")
	fmt.Println("Figure 4a/4b of the paper), so the warm run skips most probing.")
	return nil
}
