// Quickstart: tune LeNet-5 on MNIST with PipeTune and compare against the
// plain hyperparameter-tuning baseline (the paper's Tune V1).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"pipetune"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sys, err := pipetune.New(
		pipetune.WithSeed(42),
		pipetune.WithCorpusSize(512, 192),
	)
	if err != nil {
		return err
	}

	w := pipetune.Workload{Model: pipetune.LeNet5, Dataset: pipetune.MNIST}

	// Warm-start the ground-truth database by profiling the Type-I
	// workload family (the paper's §7.2 campaign, scaled down).
	fmt.Println("bootstrapping ground-truth database...")
	if err := sys.Bootstrap(pipetune.WorkloadsOfType(pipetune.TypeI)); err != nil {
		return err
	}

	spec := sys.JobSpec(w)

	fmt.Println("running baseline (Tune V1)...")
	base, err := sys.RunBaseline(spec)
	if err != nil {
		return err
	}

	fmt.Println("running PipeTune...")
	pt, err := sys.RunPipeTune(spec)
	if err != nil {
		return err
	}

	fmt.Printf("\n%-10s  %-12s  %-12s  %-12s  %-10s\n",
		"system", "accuracy", "training [s]", "tuning [s]", "energy [kJ]")
	report := func(name string, res *pipetune.JobResult) {
		fmt.Printf("%-10s  %-12.2f  %-12.1f  %-12.1f  %-10.1f\n",
			name,
			res.Best.Result.Accuracy*100,
			res.Best.Result.Duration,
			res.TuningTime,
			res.TotalEnergy/1000)
	}
	report("Tune V1", base)
	report("PipeTune", pt)

	entries, hits, misses := sys.GroundTruthStats()
	fmt.Printf("\nground truth: %d entries, %d hits, %d misses\n", entries, hits, misses)
	fmt.Printf("tuning-time reduction: %.1f%%\n",
		(1-pt.TuningTime/base.TuningTime)*100)
	fmt.Printf("best hyperparameters: %s (system %s)\n",
		pt.Best.Hyper, pt.Best.Result.FinalSys)
	return nil
}
