// Text classification (Type-II jobs): two different models (a CNN and an
// LSTM) tuned on the same News20-style corpus — the paper's model-search
// pattern. Compares all three systems: Tune V1 (accuracy only), Tune V2
// (system parameters folded into the search) and PipeTune.
//
//	go run ./examples/textclass
package main

import (
	"fmt"
	"log"

	"pipetune"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sys, err := pipetune.New(
		pipetune.WithSeed(11),
		pipetune.WithCorpusSize(384, 128),
	)
	if err != nil {
		return err
	}
	if err := sys.Bootstrap(pipetune.WorkloadsOfType(pipetune.TypeII)); err != nil {
		return err
	}

	workloads := []pipetune.Workload{
		{Model: pipetune.CNN, Dataset: pipetune.News20},
		{Model: pipetune.LSTM, Dataset: pipetune.News20},
	}

	fmt.Printf("%-14s  %-9s  %-12s  %-12s  %-12s\n",
		"workload", "system", "accuracy", "training [s]", "tuning [s]")
	for _, w := range workloads {
		spec := sys.JobSpec(w)

		v1, err := sys.RunBaseline(spec)
		if err != nil {
			return err
		}
		row(w, "V1", v1)

		v2Spec := spec
		v2Spec.Mode = pipetune.ModeV2
		v2Spec.Objective = pipetune.MaximizeAccuracyPerTime
		v2, err := sys.RunBaseline(v2Spec)
		if err != nil {
			return err
		}
		row(w, "V2", v2)

		pt, err := sys.RunPipeTune(spec)
		if err != nil {
			return err
		}
		row(w, "PipeTune", pt)
	}
	fmt.Println("\nExpected shape (paper §7.3): PipeTune matches V1's accuracy at a")
	fmt.Println("lower tuning time; V2 trades accuracy for shorter training and pays")
	fmt.Println("for its larger search space with the longest tuning phase.")
	return nil
}

func row(w pipetune.Workload, system string, res *pipetune.JobResult) {
	fmt.Printf("%-14s  %-9s  %-12.2f  %-12.1f  %-12.1f\n",
		w.Name(), system,
		res.Best.Result.Accuracy*100,
		res.Best.Result.Duration,
		res.TuningTime)
}
