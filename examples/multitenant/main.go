// Multi-tenancy (§7.4): HPT jobs arrive at a shared cluster with
// exponentially distributed inter-arrival times and are scheduled FIFO.
// The example measures mean response time under the baseline and under
// PipeTune, whose shorter per-job tuning compounds through the queue.
//
//	go run ./examples/multitenant
package main

import (
	"fmt"
	"log"

	"pipetune"
	"pipetune/internal/cluster"
	"pipetune/internal/xrand"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sys, err := pipetune.New(
		pipetune.WithSeed(5),
		pipetune.WithCorpusSize(96, 48), // response time depends only on simulated durations
	)
	if err != nil {
		return err
	}
	if err := sys.Bootstrap(pipetune.WorkloadsOfType(pipetune.TypeI, pipetune.TypeII)); err != nil {
		return err
	}

	// A 10-job trace alternating Type-I and Type-II workloads.
	catalog := []pipetune.Workload{
		{Model: pipetune.LeNet5, Dataset: pipetune.MNIST},
		{Model: pipetune.CNN, Dataset: pipetune.News20},
		{Model: pipetune.LeNet5, Dataset: pipetune.FashionMNIST},
		{Model: pipetune.LSTM, Dataset: pipetune.News20},
	}
	const numJobs = 10
	mix := make([]pipetune.Workload, numJobs)
	for i := range mix {
		mix[i] = catalog[i%len(catalog)]
	}

	// Per-job tuning durations under each system (PipeTune processes the
	// trace in order, sharing its ground truth across jobs).
	baseDur := make([]float64, numJobs)
	ptDur := make([]float64, numJobs)
	for i, w := range mix {
		spec := sys.JobSpec(w)
		spec.Seed = uint64(100 + i)
		base, err := sys.RunBaseline(spec)
		if err != nil {
			return err
		}
		baseDur[i] = base.TuningTime
		pt, err := sys.RunPipeTune(spec)
		if err != nil {
			return err
		}
		ptDur[i] = pt.TuningTime
	}

	// One shared Poisson arrival process; two concurrent job slots.
	meanDur := 0.0
	for _, d := range baseDur {
		meanDur += d
	}
	meanDur /= numJobs
	arrivals := cluster.PoissonArrivals(xrand.New(99), numJobs, meanDur/2/0.8)

	simulate := func(durations []float64) (float64, error) {
		jobs := make([]cluster.Job, numJobs)
		for i := range jobs {
			jobs[i] = cluster.Job{ID: i, Arrival: arrivals[i], Duration: durations[i]}
		}
		stats, err := cluster.SimulateFIFO(jobs, 2)
		if err != nil {
			return 0, err
		}
		return cluster.MeanResponse(stats), nil
	}
	baseResp, err := simulate(baseDur)
	if err != nil {
		return err
	}
	ptResp, err := simulate(ptDur)
	if err != nil {
		return err
	}

	fmt.Printf("jobs: %d, slots: 2, mean inter-arrival: %.0f s\n\n", numJobs, meanDur/2/0.8)
	fmt.Printf("%-10s  %-22s\n", "system", "mean response time [s]")
	fmt.Printf("%-10s  %-22.1f\n", "Tune V1", baseResp)
	fmt.Printf("%-10s  %-22.1f\n", "PipeTune", ptResp)
	fmt.Printf("\nresponse-time reduction: %.1f%%\n", (1-ptResp/baseResp)*100)
	return nil
}
