// Multi-tenancy (§7.4): HPT jobs arrive at a shared cluster with
// exponentially distributed inter-arrival times and are placed by the
// event-driven scheduler. The example measures mean response time under the
// baseline and under PipeTune, whose shorter per-job tuning compounds
// through the queue — then replays the same trace under the three
// placement policies (FIFO, shortest-job-first, EASY backfill) with each
// job claiming a real resource footprint on the 4-node cluster — and
// finally shows the pipetuned daemon's job dispatcher sharing one worker
// pool between two tenants by weighted deficit round robin.
//
//	go run ./examples/multitenant
package main

import (
	"fmt"
	"log"
	"strings"

	"pipetune"
	"pipetune/internal/admission"
	"pipetune/internal/cluster"
	"pipetune/internal/sched"
	"pipetune/internal/xrand"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sys, err := pipetune.New(
		pipetune.WithSeed(5),
		pipetune.WithCorpusSize(96, 48), // response time depends only on simulated durations
	)
	if err != nil {
		return err
	}
	if err := sys.Bootstrap(pipetune.WorkloadsOfType(pipetune.TypeI, pipetune.TypeII)); err != nil {
		return err
	}

	// A 10-job trace alternating Type-I and Type-II workloads.
	catalog := []pipetune.Workload{
		{Model: pipetune.LeNet5, Dataset: pipetune.MNIST},
		{Model: pipetune.CNN, Dataset: pipetune.News20},
		{Model: pipetune.LeNet5, Dataset: pipetune.FashionMNIST},
		{Model: pipetune.LSTM, Dataset: pipetune.News20},
	}
	const numJobs = 10
	mix := make([]pipetune.Workload, numJobs)
	for i := range mix {
		mix[i] = catalog[i%len(catalog)]
	}

	// Per-job tuning durations under each system (PipeTune processes the
	// trace in order, sharing its ground truth across jobs).
	baseDur := make([]float64, numJobs)
	ptDur := make([]float64, numJobs)
	for i, w := range mix {
		spec := sys.JobSpec(w)
		spec.Seed = uint64(100 + i)
		base, err := sys.RunBaseline(spec)
		if err != nil {
			return err
		}
		baseDur[i] = base.TuningTime
		pt, err := sys.RunPipeTune(spec)
		if err != nil {
			return err
		}
		ptDur[i] = pt.TuningTime
	}

	// One shared Poisson arrival process; two concurrent job slots.
	meanDur := 0.0
	for _, d := range baseDur {
		meanDur += d
	}
	meanDur /= numJobs
	arrivals := cluster.PoissonArrivals(xrand.New(99), numJobs, meanDur/2/0.8)

	simulate := func(durations []float64) (float64, error) {
		jobs := make([]cluster.Job, numJobs)
		for i := range jobs {
			jobs[i] = cluster.Job{ID: i, Arrival: arrivals[i], Duration: durations[i]}
		}
		stats, err := cluster.SimulateFIFO(jobs, 2)
		if err != nil {
			return 0, err
		}
		return cluster.MeanResponse(stats), nil
	}
	baseResp, err := simulate(baseDur)
	if err != nil {
		return err
	}
	ptResp, err := simulate(ptDur)
	if err != nil {
		return err
	}

	fmt.Printf("jobs: %d, slots: 2, mean inter-arrival: %.0f s\n\n", numJobs, meanDur/2/0.8)
	fmt.Printf("%-10s  %-22s\n", "system", "mean response time [s]")
	fmt.Printf("%-10s  %-22.1f\n", "Tune V1", baseResp)
	fmt.Printf("%-10s  %-22.1f\n", "PipeTune", ptResp)
	fmt.Printf("\nresponse-time reduction: %.1f%%\n\n", (1-ptResp/baseResp)*100)

	// Same jobs under burst arrivals, with real footprints: Type-II jobs
	// claim a whole node, Type-I half of one, and admission is driven by
	// whether the footprint fits — the placement policy decides who fills
	// the holes that blocked large jobs leave behind.
	polArrivals := cluster.PoissonArrivals(xrand.New(101), numJobs, meanDur/8)
	fmt.Printf("%-10s  %-22s  %s\n", "policy", "mean response time [s]", "makespan [s]")
	for _, name := range []string{pipetune.SchedFIFO, pipetune.SchedSJF, pipetune.SchedBackfill} {
		policy, err := sched.ByName(name)
		if err != nil {
			return err
		}
		eng := sched.New(cluster.Paper().SchedPool(), policy, 0)
		for i, w := range mix {
			fp := pipetune.SysConfig{Cores: 16, MemoryGB: 32}
			if w.Type() == pipetune.TypeII {
				fp = pipetune.SysConfig{Cores: 32, MemoryGB: 64}
			}
			task := sched.Task{ID: i, Arrival: polArrivals[i], Sys: fp, Duration: ptDur[i]}
			if err := eng.Submit(task, nil); err != nil {
				return err
			}
		}
		if err := eng.Run(); err != nil {
			return err
		}
		total := 0.0
		for _, st := range eng.Stats() {
			total += st.Response
		}
		fmt.Printf("%-10s  %-22.1f  %.1f\n", name, total/numJobs, eng.Now())
	}

	// Fair-share job dispatch: the pipetuned daemon's admission queue
	// (-job-policy fair) arbitrates whole tuning jobs between tenants.
	// Two tenants dump equal backlogs; weight 2 earns twice the dispatch
	// share, whatever the submission interleaving.
	fmt.Printf("\nfair dispatch, weights research=2 interns=1, equal backlogs:\n")
	q, err := admission.New(admission.Config{
		Policy:  admission.PolicyFair,
		Weights: map[string]int{"research": 2, "interns": 1},
	})
	if err != nil {
		return err
	}
	for i := 0; i < 9; i++ {
		for _, tenant := range []string{"research", "interns"} {
			if err := q.Push(admission.Job{
				ID: fmt.Sprintf("%s-%d", tenant, i), Tenant: tenant, Cost: meanDur,
			}); err != nil {
				return err
			}
		}
	}
	var order []string
	for q.Len() > 0 {
		j, _ := q.Pop()
		order = append(order, j.Tenant[:1]) // r / i
	}
	fmt.Printf("dispatch order: %s\n", strings.Join(order, " "))
	return nil
}
