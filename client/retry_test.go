package client

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"pipetune/api"
)

// retryClient builds a client with fast backoff for tests.
func retryClient(url string, opts ...Option) *Client {
	base := []Option{WithRetry(RetryConfig{
		MaxAttempts: 4,
		BaseDelay:   time.Millisecond,
		MaxDelay:    4 * time.Millisecond,
	})}
	return New(url, append(base, opts...)...)
}

// flakyTransport fails the first n round trips with a dial-level error,
// then delegates to the real transport.
type flakyTransport struct {
	remaining atomic.Int64
	attempts  atomic.Int64
}

func (f *flakyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	f.attempts.Add(1)
	if f.remaining.Add(-1) >= 0 {
		return nil, &net.OpError{Op: "dial", Net: "tcp", Err: &net.DNSError{Err: "connection refused"}}
	}
	return http.DefaultTransport.RoundTrip(req)
}

// TestRetryHealthOn503 verifies idempotent requests retry transient HTTP
// failures: the daemon answers 503 twice, then recovers.
func TestRetryHealthOn503(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"status":"ok","queued":0,"running":0,"workers":1}`))
	}))
	defer srv.Close()

	h, err := retryClient(srv.URL).Health(context.Background())
	if err != nil {
		t.Fatalf("health with retries: %v", err)
	}
	if h.Status != "ok" {
		t.Fatalf("health = %+v", h)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3 (two 503s + success)", got)
	}
}

// TestRetryExhaustion verifies the attempt cap: a permanently unavailable
// endpoint fails after MaxAttempts tries, not an infinite loop.
func TestRetryExhaustion(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	_, err := retryClient(srv.URL).Health(context.Background())
	if err == nil {
		t.Fatal("health against a dead daemon succeeded")
	}
	if got := calls.Load(); got != 4 {
		t.Fatalf("server saw %d calls, want MaxAttempts=4", got)
	}
}

// TestSubmitNeverRetriesAfterResponse is the idempotency guarantee: a 503
// response to Submit was still a response — the daemon may have acted on
// the request (or a proxy may have) — so the client must not resubmit.
func TestSubmitNeverRetriesAfterResponse(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	_, err := retryClient(srv.URL).Submit(context.Background(), api.JobRequest{Workload: "lenet/mnist"})
	if err == nil {
		t.Fatal("submit against 503 succeeded")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d submit calls, want exactly 1 (non-idempotent, no retry)", got)
	}
}

// TestSubmitRetriesDialErrors verifies the carve-out: when the connection
// itself fails (daemon restarting), the request provably never arrived,
// so even Submit retries.
func TestSubmitRetriesDialErrors(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		_, _ = w.Write([]byte(`{"id":"job-000001","state":"queued","request":{"workload":"lenet/mnist"},"submitted":"2026-01-01T00:00:00Z","trialsDone":0}`))
	}))
	defer srv.Close()

	ft := &flakyTransport{}
	ft.remaining.Store(2) // first two dials refused
	cl := retryClient(srv.URL, WithHTTPClient(&http.Client{Transport: ft}))
	st, err := cl.Submit(context.Background(), api.JobRequest{Workload: "lenet/mnist"})
	if err != nil {
		t.Fatalf("submit through flaky dials: %v", err)
	}
	if st.ID != "job-000001" {
		t.Fatalf("status = %+v", st)
	}
	if got := ft.attempts.Load(); got != 3 {
		t.Fatalf("transport saw %d attempts, want 3", got)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server processed %d submits, want exactly 1", got)
	}
}

// TestNoRetryByDefault pins the opt-in: a plain New client makes exactly
// one attempt.
func TestNoRetryByDefault(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	if _, err := New(srv.URL).Health(context.Background()); err == nil {
		t.Fatal("health against 503 succeeded")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d calls, want 1 (no retries without WithRetry)", got)
	}
}

// TestRetryHonoursContext verifies cancellation interrupts the backoff.
func TestRetryHonoursContext(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	cl := New(srv.URL, WithRetry(RetryConfig{
		MaxAttempts: 100,
		BaseDelay:   50 * time.Millisecond,
		MaxDelay:    time.Second,
	}))
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := cl.Health(ctx); err == nil {
		t.Fatal("health succeeded against permanent 503")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancelled retry loop ran %v", elapsed)
	}
}

// TestZeroValueClientStillRequests pins backward compatibility: a Client
// built as a struct literal (no New, no retry config) must make exactly
// one real request, not silently succeed with zero values.
func TestZeroValueClientStillRequests(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"status":"ok","queued":0,"running":0,"workers":1}`))
	}))
	defer srv.Close()

	cl := &Client{BaseURL: srv.URL}
	h, err := cl.Health(context.Background())
	if err != nil {
		t.Fatalf("zero-value client: %v", err)
	}
	if h.Status != "ok" || calls.Load() != 1 {
		t.Fatalf("health = %+v after %d calls, want ok after 1", h, calls.Load())
	}
}
