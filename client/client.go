// Package client is the Go client for the pipetuned daemon's HTTP/JSON
// API (package api documents the surface; cmd/pipetuned serves it).
//
//	cl := client.New("http://localhost:8080")
//	st, err := cl.Submit(ctx, api.JobRequest{Workload: "lenet/mnist"})
//	...
//	final, err := cl.Wait(ctx, st.ID, 100*time.Millisecond)
//	fmt.Println(final.Result.Best.Score)
//
// Results decoded from the API are the library's own tune.JobResult
// serialisation: a job submitted over HTTP with a fixed seed yields a
// Best trial identical to calling pipetune.System.RunPipeTune in-process
// against the same ground-truth state (the shared database makes job
// history matter, by design — see package api).
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"pipetune/api"
)

// Client speaks to one pipetuned endpoint. The zero HTTPClient means
// http.DefaultClient. Safe for concurrent use.
type Client struct {
	BaseURL    string
	HTTPClient *http.Client
}

// New returns a client for the daemon at baseURL (e.g.
// "http://localhost:8080").
func New(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// do issues a request and decodes the JSON response into out; non-2xx
// responses decode into *api.Error.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("client: encode request: %w", err)
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return fmt.Errorf("client: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return decodeError(resp)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decode %s %s: %w", method, path, err)
	}
	return nil
}

// decodeError turns a non-2xx response into an *api.Error, falling back
// to the HTTP status line when the body carries no JSON error envelope.
func decodeError(resp *http.Response) error {
	apiErr := api.Error{StatusCode: resp.StatusCode}
	if err := json.NewDecoder(resp.Body).Decode(&apiErr); err != nil || apiErr.Message == "" {
		apiErr.Message = resp.Status
	}
	return &apiErr
}

// Submit enqueues a tuning job.
func (c *Client) Submit(ctx context.Context, req api.JobRequest) (api.JobStatus, error) {
	var st api.JobStatus
	err := c.do(ctx, http.MethodPost, "/v1/jobs", req, &st)
	return st, err
}

// Job fetches one job's status (with result once done).
func (c *Client) Job(ctx context.Context, id string) (api.JobStatus, error) {
	var st api.JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Jobs lists every job in submission order.
func (c *Client) Jobs(ctx context.Context) ([]api.JobStatus, error) {
	var out []api.JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &out)
	return out, err
}

// Cancel aborts a queued or running job.
func (c *Client) Cancel(ctx context.Context, id string) (api.JobStatus, error) {
	var st api.JobStatus
	err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// GroundTruth reports the service's shared similarity database.
func (c *Client) GroundTruth(ctx context.Context) (api.GroundTruthStats, error) {
	var st api.GroundTruthStats
	err := c.do(ctx, http.MethodGet, "/v1/groundtruth", nil, &st)
	return st, err
}

// Health probes the daemon's liveness endpoint.
func (c *Client) Health(ctx context.Context) (api.Health, error) {
	var h api.Health
	err := c.do(ctx, http.MethodGet, "/healthz", nil, &h)
	return h, err
}

// Wait polls until the job reaches a terminal state and returns the final
// status. poll <= 0 defaults to 200ms.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (api.JobStatus, error) {
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			return st, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-t.C:
		}
	}
}

// ErrStreamTruncated reports an event stream that ended before the job's
// terminal state event — the server drops subscribers that fall too far
// behind. The caller can re-Stream (events replay from the start) or fall
// back to polling Job/Wait.
var ErrStreamTruncated = errors.New("client: event stream ended before the job finished")

// Stream consumes the job's Server-Sent-Events progress stream, invoking
// fn for every event (replayed from the job's start). It returns nil when
// the terminal state event has been delivered, ErrStreamTruncated if the
// server closed the stream before that (slow-subscriber drop), fn's error
// if it returns one (propagated), or the context's error on cancellation.
func (c *Client) Stream(ctx context.Context, id string, fn func(api.Event) error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return fmt.Errorf("client: %w", err)
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.http().Do(req)
	if err != nil {
		return fmt.Errorf("client: stream %s: %w", id, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var data []byte
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "data: "):
			data = append(data, strings.TrimPrefix(line, "data: ")...)
		case line == "" && len(data) > 0:
			var ev api.Event
			if err := json.Unmarshal(data, &ev); err != nil {
				return fmt.Errorf("client: decode event: %w", err)
			}
			data = data[:0]
			if err := fn(ev); err != nil {
				return err
			}
			if ev.Type == api.EventState && ev.State.Terminal() {
				return nil
			}
		}
	}
	if err := sc.Err(); err != nil && ctx.Err() == nil {
		return fmt.Errorf("client: stream %s: %w", id, err)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	// Clean EOF without a terminal state event: the server dropped this
	// subscriber (or shut the stream early).
	return fmt.Errorf("%w (job %s)", ErrStreamTruncated, id)
}
