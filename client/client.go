// Package client is the Go client for the pipetuned daemon's HTTP/JSON
// API (package api documents the surface; cmd/pipetuned serves it).
//
//	cl := client.New("http://localhost:8080")
//	st, err := cl.Submit(ctx, api.JobRequest{Workload: "lenet/mnist"})
//	...
//	final, err := cl.Wait(ctx, st.ID, 100*time.Millisecond)
//	fmt.Println(final.Result.Best.Score)
//
// Results decoded from the API are the library's own tune.JobResult
// serialisation: a job submitted over HTTP with a fixed seed yields a
// Best trial identical to calling pipetune.System.RunPipeTune in-process
// against the same ground-truth state (the shared database makes job
// history matter, by design — see package api).
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"pipetune/api"
)

// Client speaks to one pipetuned endpoint. The zero HTTPClient means
// http.DefaultClient. Safe for concurrent use.
type Client struct {
	BaseURL    string
	HTTPClient *http.Client

	retry RetryConfig

	jitterMu sync.Mutex
	jitter   *rand.Rand // backoff jitter; lazily seeded
}

// Option customises a Client.
type Option func(*Client)

// RetryConfig bounds the client's automatic retries of transient
// failures.
type RetryConfig struct {
	// MaxAttempts is the total number of tries, the first included
	// (default 4 when WithRetry is used; 1 — no retries — otherwise).
	MaxAttempts int
	// BaseDelay is the first backoff (default 100ms); each further
	// attempt doubles it, capped at MaxDelay (default 2s). The actual
	// sleep is jittered uniformly in [delay/2, delay) so synchronised
	// clients do not reconverge on a struggling daemon.
	BaseDelay time.Duration
	MaxDelay  time.Duration
}

// withDefaults fills unset fields.
func (rc RetryConfig) withDefaults() RetryConfig {
	if rc.MaxAttempts <= 0 {
		rc.MaxAttempts = 4
	}
	if rc.BaseDelay <= 0 {
		rc.BaseDelay = 100 * time.Millisecond
	}
	if rc.MaxDelay <= 0 {
		rc.MaxDelay = 2 * time.Second
	}
	return rc
}

// WithRetry makes the client retry transient failures — connection
// refused and other dial-level errors, plus 502/503 responses — with
// capped exponential backoff and jitter. Idempotent requests (Job, Jobs,
// GroundTruth, Health, Cancel, Export) retry on any of those; requests
// that mutate on arrival (Submit, Import) are retried ONLY when the
// failure guarantees the daemon never received them (a dial error) —
// never after a response, however transient-looking, was received.
func WithRetry(rc RetryConfig) Option {
	return func(c *Client) { c.retry = rc.withDefaults() }
}

// WithHTTPClient sets the underlying *http.Client.
func WithHTTPClient(h *http.Client) Option {
	return func(c *Client) { c.HTTPClient = h }
}

// New returns a client for the daemon at baseURL (e.g.
// "http://localhost:8080").
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		BaseURL: strings.TrimRight(baseURL, "/"),
		// Default: a single attempt (no retries) until WithRetry opts in.
		retry: RetryConfig{MaxAttempts: 1, BaseDelay: 100 * time.Millisecond, MaxDelay: 2 * time.Second},
	}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// do issues a request and decodes the JSON response into out; non-2xx
// responses decode into *api.Error. idempotent marks requests that are
// safe to repeat after the daemon may already have processed them.
func (c *Client) do(ctx context.Context, method, path string, body, out any, idempotent bool) error {
	var buf []byte
	if body != nil {
		var err error
		if buf, err = json.Marshal(body); err != nil {
			return fmt.Errorf("client: encode request: %w", err)
		}
	}
	// A zero-value Client (struct literal rather than New) has no retry
	// config; it must still make exactly one attempt.
	attempts := c.retry.MaxAttempts
	if attempts <= 0 {
		attempts = 1
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			if err := c.backoff(ctx, attempt); err != nil {
				return lastErr
			}
		}
		retryable, err := c.attempt(ctx, method, path, buf, out, idempotent)
		if err == nil {
			return nil
		}
		lastErr = err
		if !retryable || ctx.Err() != nil {
			return err
		}
	}
	return lastErr
}

// attempt runs one round trip. The bool reports whether the failure is
// safe to retry for this request's idempotency class.
func (c *Client) attempt(ctx context.Context, method, path string, body []byte, out any, idempotent bool) (bool, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return false, fmt.Errorf("client: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		// Transport-level failure: no response was received. A dial
		// error (connection refused, no route) means the request never
		// reached the daemon, so even non-idempotent requests may retry;
		// anything later (a torn write/read mid-exchange) may have been
		// processed and only idempotent requests retry.
		return idempotent || isDialError(err), fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		err := decodeError(resp)
		// A response was received, so the daemon saw the request:
		// retrying a non-idempotent request here could apply it twice.
		transient := resp.StatusCode == http.StatusBadGateway ||
			resp.StatusCode == http.StatusServiceUnavailable
		return idempotent && transient, err
	}
	if out == nil {
		return false, nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return false, fmt.Errorf("client: decode %s %s: %w", method, path, err)
	}
	return false, nil
}

// isDialError reports failures where the connection was never
// established, so the request cannot have been processed.
func isDialError(err error) bool {
	var op *net.OpError
	if errors.As(err, &op) {
		return op.Op == "dial"
	}
	return false
}

// backoff sleeps for the attempt's jittered exponential delay, bailing
// out early on context cancellation.
func (c *Client) backoff(ctx context.Context, attempt int) error {
	d := c.retry.BaseDelay << (attempt - 1)
	if d > c.retry.MaxDelay || d <= 0 {
		d = c.retry.MaxDelay
	}
	c.jitterMu.Lock()
	if c.jitter == nil {
		c.jitter = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	// Uniform in [d/2, d): full delays stay bounded, synchronised
	// clients spread out.
	d = d/2 + time.Duration(c.jitter.Int63n(int64(d/2)+1))
	c.jitterMu.Unlock()
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// decodeError turns a non-2xx response into an *api.Error, falling back
// to the HTTP status line when the body carries no JSON error envelope.
func decodeError(resp *http.Response) error {
	apiErr := api.Error{StatusCode: resp.StatusCode}
	if err := json.NewDecoder(resp.Body).Decode(&apiErr); err != nil || apiErr.Message == "" {
		apiErr.Message = resp.Status
	}
	return &apiErr
}

// Submit enqueues a tuning job. Submission is not idempotent: with
// WithRetry it retries only dial-level failures, where the daemon
// provably never saw the request.
func (c *Client) Submit(ctx context.Context, req api.JobRequest) (api.JobStatus, error) {
	var st api.JobStatus
	err := c.do(ctx, http.MethodPost, "/v1/jobs", req, &st, false)
	return st, err
}

// Job fetches one job's status (with result once done).
func (c *Client) Job(ctx context.Context, id string) (api.JobStatus, error) {
	var st api.JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st, true)
	return st, err
}

// Jobs lists every job in submission order.
func (c *Client) Jobs(ctx context.Context) ([]api.JobStatus, error) {
	var out []api.JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &out, true)
	return out, err
}

// Cancel aborts a queued or running job.
func (c *Client) Cancel(ctx context.Context, id string) (api.JobStatus, error) {
	var st api.JobStatus
	err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &st, true)
	return st, err
}

// GroundTruth reports the service's shared similarity database.
func (c *Client) GroundTruth(ctx context.Context) (api.GroundTruthStats, error) {
	var st api.GroundTruthStats
	err := c.do(ctx, http.MethodGet, "/v1/groundtruth", nil, &st, true)
	return st, err
}

// ExportGroundTruth downloads the daemon's full similarity database in
// the snapshot wire format (loadable by another daemon's -gt file or
// ImportGroundTruth).
func (c *Client) ExportGroundTruth(ctx context.Context) (api.GroundTruthDump, error) {
	var dump api.GroundTruthDump
	err := c.do(ctx, http.MethodGet, "/v1/groundtruth/export", nil, &dump, true)
	return dump, err
}

// ImportGroundTruth merges a dump into the daemon's database. Imports
// mutate on arrival, so with WithRetry only dial-level failures retry.
func (c *Client) ImportGroundTruth(ctx context.Context, dump api.GroundTruthDump) (api.ImportResult, error) {
	var res api.ImportResult
	err := c.do(ctx, http.MethodPost, "/v1/groundtruth/import", dump, &res, false)
	return res, err
}

// Health probes the daemon's liveness endpoint.
func (c *Client) Health(ctx context.Context) (api.Health, error) {
	var h api.Health
	err := c.do(ctx, http.MethodGet, "/healthz", nil, &h, true)
	return h, err
}

// Fleet reports the remote execution plane: registered workers, lease
// depths, the wire protocol in force (json, binary or json+binary) and
// drain state. Daemons on the local backend answer 404.
func (c *Client) Fleet(ctx context.Context) (api.FleetStatus, error) {
	var fs api.FleetStatus
	err := c.do(ctx, http.MethodGet, "/v1/fleet", nil, &fs, true)
	return fs, err
}

// Metrics fetches the daemon's metrics registry as a typed snapshot —
// the JSON twin of the Prometheus text page at /metrics. Daemons running
// with metrics disabled answer 404.
func (c *Client) Metrics(ctx context.Context) (api.MetricsSnapshot, error) {
	var ms api.MetricsSnapshot
	err := c.do(ctx, http.MethodGet, "/v1/metrics", nil, &ms, true)
	return ms, err
}

// Wait polls until the job reaches a terminal state and returns the final
// status. poll <= 0 defaults to 200ms.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (api.JobStatus, error) {
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			return st, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-t.C:
		}
	}
}

// ErrStreamTruncated reports an event stream that ended before the job's
// terminal state event and without a "lagged" frame — a torn connection
// or a pre-lagged-event server. The caller can re-Stream (events replay
// from the start) or fall back to polling Job/Wait.
var ErrStreamTruncated = errors.New("client: event stream ended before the job finished")

// ErrStreamLagged reports that the server explicitly dropped this
// subscriber for falling behind (api.EventLagged): the job is still
// running or finished without us — the stream just could not keep up.
// Re-Stream to replay from the start (Follow does this automatically),
// or poll Job/Wait for the terminal state.
var ErrStreamLagged = errors.New("client: server dropped the event stream for lagging")

// Stream consumes the job's Server-Sent-Events progress stream, invoking
// fn for every event (replayed from the job's start). It returns nil when
// the terminal state event has been delivered, ErrStreamLagged when the
// server dropped this subscriber for falling behind (fn sees the lagged
// frame first; re-subscribe and replay for the true outcome),
// ErrStreamTruncated if the stream ended without either marker, fn's
// error if it returns one (propagated), or the context's error on
// cancellation.
func (c *Client) Stream(ctx context.Context, id string, fn func(api.Event) error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return fmt.Errorf("client: %w", err)
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.http().Do(req)
	if err != nil {
		return fmt.Errorf("client: stream %s: %w", id, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var data []byte
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "data: "):
			data = append(data, strings.TrimPrefix(line, "data: ")...)
		case line == "" && len(data) > 0:
			var ev api.Event
			if err := json.Unmarshal(data, &ev); err != nil {
				return fmt.Errorf("client: decode event: %w", err)
			}
			data = data[:0]
			if err := fn(ev); err != nil {
				return err
			}
			if ev.Type == api.EventLagged {
				return fmt.Errorf("%w (job %s)", ErrStreamLagged, id)
			}
			if ev.Type == api.EventState && ev.State.Terminal() {
				return nil
			}
		}
	}
	if err := sc.Err(); err != nil && ctx.Err() == nil {
		return fmt.Errorf("client: stream %s: %w", id, err)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	// Clean EOF without a terminal state event: the server dropped this
	// subscriber (or shut the stream early).
	return fmt.Errorf("%w (job %s)", ErrStreamTruncated, id)
}

// Follow is Stream with automatic recovery from slow-subscriber drops:
// when the server ends the stream with a lagged frame, Follow re-streams
// (the server replays from the job's start) and suppresses events fn has
// already seen, so fn observes every event exactly once, in order,
// through to the terminal state. Lagged frames themselves are hidden from
// fn — they are transport flow control, not job progress.
func (c *Client) Follow(ctx context.Context, id string, fn func(api.Event) error) error {
	seen := 0
	for {
		err := c.Stream(ctx, id, func(ev api.Event) error {
			if ev.Type == api.EventLagged || ev.Seq <= seen {
				return nil
			}
			seen = ev.Seq
			return fn(ev)
		})
		if errors.Is(err, ErrStreamLagged) {
			continue
		}
		return err
	}
}
