package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"pipetune/api"
)

// sseFrame writes one SSE frame for ev.
func sseFrame(w http.ResponseWriter, ev api.Event) {
	var data string
	switch ev.Type {
	case api.EventTrial:
		data = fmt.Sprintf(`{"type":"trial","jobId":%q,"seq":%d,"trial":{"trialId":%d}}`, ev.JobID, ev.Seq, ev.Seq)
	case api.EventState:
		data = fmt.Sprintf(`{"type":"state","jobId":%q,"seq":%d,"state":%q}`, ev.JobID, ev.Seq, ev.State)
	case api.EventLagged:
		data = fmt.Sprintf(`{"type":"lagged","jobId":%q}`, ev.JobID)
	}
	fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data)
}

// TestStreamSurfacesLagged pins the client's half of the slow-subscriber
// contract: a lagged frame ends Stream with ErrStreamLagged (after fn saw
// the frame), distinguishable from both a clean terminal state and a torn
// stream.
func TestStreamSurfacesLagged(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		sseFrame(w, api.Event{Type: api.EventTrial, JobID: "job-000001", Seq: 1})
		sseFrame(w, api.Event{Type: api.EventLagged, JobID: "job-000001"})
	}))
	defer srv.Close()

	var sawLagged bool
	err := New(srv.URL).Stream(context.Background(), "job-000001", func(ev api.Event) error {
		if ev.Type == api.EventLagged {
			sawLagged = true
		}
		return nil
	})
	if !errors.Is(err, ErrStreamLagged) {
		t.Fatalf("Stream = %v, want ErrStreamLagged", err)
	}
	if errors.Is(err, ErrStreamTruncated) {
		t.Fatal("lagged conflated with truncated")
	}
	if !sawLagged {
		t.Fatal("fn never saw the lagged frame")
	}
}

// TestStreamTruncatedStillDistinct pins the legacy behaviour: a stream
// that just ends (no lagged frame, no terminal state) reports
// ErrStreamTruncated, not ErrStreamLagged.
func TestStreamTruncatedStillDistinct(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		sseFrame(w, api.Event{Type: api.EventTrial, JobID: "job-000001", Seq: 1})
	}))
	defer srv.Close()
	err := New(srv.URL).Stream(context.Background(), "job-000001", func(api.Event) error { return nil })
	if !errors.Is(err, ErrStreamTruncated) || errors.Is(err, ErrStreamLagged) {
		t.Fatalf("Stream = %v, want ErrStreamTruncated only", err)
	}
}

// TestFollowRecoversFromLag drives the full recovery loop: the first
// stream is dropped mid-job with a lagged frame, the second replays from
// the start through the terminal state; fn must observe every event
// exactly once, in order, and Follow returns nil.
func TestFollowRecoversFromLag(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		if calls.Add(1) == 1 {
			// First subscription: two trials, then the drop.
			sseFrame(w, api.Event{Type: api.EventTrial, JobID: "j", Seq: 1})
			sseFrame(w, api.Event{Type: api.EventTrial, JobID: "j", Seq: 2})
			sseFrame(w, api.Event{Type: api.EventLagged, JobID: "j"})
			return
		}
		// Replay: the full history ending in the terminal state.
		sseFrame(w, api.Event{Type: api.EventTrial, JobID: "j", Seq: 1})
		sseFrame(w, api.Event{Type: api.EventTrial, JobID: "j", Seq: 2})
		sseFrame(w, api.Event{Type: api.EventTrial, JobID: "j", Seq: 3})
		sseFrame(w, api.Event{Type: api.EventState, JobID: "j", Seq: 4, State: api.StateDone})
	}))
	defer srv.Close()

	var seqs []int
	var terminal api.JobState
	err := New(srv.URL).Follow(context.Background(), "j", func(ev api.Event) error {
		seqs = append(seqs, ev.Seq)
		if ev.Type == api.EventState {
			terminal = ev.State
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 2 {
		t.Fatalf("Follow made %d subscriptions, want 2", calls.Load())
	}
	want := []int{1, 2, 3, 4}
	if len(seqs) != len(want) {
		t.Fatalf("fn saw seqs %v, want %v (duplicates or gaps across the replay)", seqs, want)
	}
	for i := range want {
		if seqs[i] != want[i] {
			t.Fatalf("fn saw seqs %v, want %v", seqs, want)
		}
	}
	if terminal != api.StateDone {
		t.Fatalf("terminal state %v", terminal)
	}
}

// TestFollowPropagatesFnError verifies fn's error aborts Follow without a
// retry.
func TestFollowPropagatesFnError(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Content-Type", "text/event-stream")
		sseFrame(w, api.Event{Type: api.EventTrial, JobID: "j", Seq: 1})
		sseFrame(w, api.Event{Type: api.EventState, JobID: "j", Seq: 2, State: api.StateDone})
	}))
	defer srv.Close()
	boom := errors.New("boom")
	err := New(srv.URL).Follow(context.Background(), "j", func(api.Event) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("Follow = %v, want fn's error", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("Follow retried after fn error: %d calls", calls.Load())
	}
}
